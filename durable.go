package blast

// Durable serving: persistence and crash recovery for the sharded
// snapshot-swap Server. Enabled by ServerOptions.Dir, which lays out:
//
//	Dir/MANIFEST.json          layout + seed fingerprint, written once
//	Dir/wal/shard-NNN.wal      per-shard write-ahead log (internal/wal)
//	Dir/snap/shard-NNN/        epoch-named snapshot files (internal/shard)
//
// Write path. Server.InsertAll encodes the admitted batch once and
// appends the record to EVERY shard's WAL before ids are returned —
// the logs mirror the in-memory broadcast, so each is independently a
// complete journal of the global insert sequence. Should an append fail
// on some log after succeeding on another, the batch is rolled back off
// the logs that took it; if even the rollback fails the server poisons
// itself (sticky error, no further admissions) rather than let logs
// diverge mid-sequence. Snapshot persistence piggybacks on the shard
// publish hook: every SnapshotEvery admitted batches, the freshly
// published snapshot is written (atomically, via temp file + rename)
// under the shard's snapshot directory and old files are pruned.
//
// Recovery. ServeBlocks over an existing Dir rebuilds the pre-crash
// state from the seed Blocks artifact plus the disk state:
//
//	1. Every WAL is opened, its torn tail truncated (internal/wal), and
//	   the common cut — the minimum record count — taken: a batch was
//	   admitted only if its record landed on every log, and since
//	   appends run in shard order the counts are non-increasing across
//	   shards at any crash instant. Logs past the cut are truncated
//	   back, and the per-record bytes are cross-checked across shards
//	   (they are encodings of one batch sequence and must be identical);
//	   any disagreement or undecodable record inside the cut fails
//	   closed — recovery never invents or reorders admitted data.
//	2. Per shard, the newest snapshot file that decodes, validates, and
//	   covers at most the cut is restored (Index.restoreIndex: decision
//	   arrays from the snapshot, structure re-derived and verified);
//	   unusable snapshots fall back to older ones, then to a cold build
//	   replaying the whole WAL.
//	3. The WAL records past each shard's snapshot position are replayed
//	   through the ordinary InsertAll path, after which every replica
//	   sits exactly where a never-crashed server's replicas would.
//
// The recovered server then serves Pairs/Candidates/Threshold
// byte-identical to a cold IndexBlocks over seed + replayed inserts —
// the same contract Quiesce establishes, enforced by the differential
// matrix in durable_test.go and the SIGKILL harness in crash_test.go.
//
// Partitioned topology. Under ServerOptions.Topology ==
// TopologyPartitioned the layout is the same but both artifact kinds
// hold only owned state: shard i's WAL records carry just the profiles
// whose assigned ids hash to i (wal.AppendOwnedBatch — every shard
// still journals every batch, so the common-cut rule is unchanged), and
// its snapshot files are owned-rows slices (BLSNAP02). Recovery
// reassembles the full batch sequence from the per-shard subsets with
// fail-closed coverage checks, replays it into every shard's appender,
// and restores the published snapshots either by adopting a complete
// at-cut set from disk (the replay-free path a drained Close leaves) or
// by slicing a cold master rebuild. See finishDurablePartitioned.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"blast/internal/blocking"
	"blast/internal/model"
	"blast/internal/shard"
	"blast/internal/wal"
)

const durManifestVersion = 1

// durManifest pins the parameters a durable directory was created with.
// Reopening with a different layout or seed artifact would replay the
// logs against the wrong base state, so any mismatch fails closed.
type durManifest struct {
	Version      int    `json:"version"`
	Shards       int    `json:"shards"`
	Kind         string `json:"kind"`
	SeedProfiles int    `json:"seed_profiles"`
	SeedBlocks   uint64 `json:"seed_blocks_fnv"`
	// Topology records the shard topology the directory journals for.
	// The empty string means replicated — the only topology that existed
	// before the field did, so directories from older versions reopen
	// cleanly — and the WAL record format depends on it: replicated logs
	// hold full batches, partitioned logs hold per-shard owned subsets.
	Topology string `json:"topology,omitempty"`
	// Storage records the graph storage mode (Options.Storage) the
	// directory was created under, with the same empty-means-zero-value
	// back-compat convention as Topology (empty = memory). Pinning it
	// keeps a reopen from silently flipping the build's memory/spill
	// behavior out from under an operator's capacity planning.
	Storage string `json:"storage,omitempty"`
}

// manifestStorage renders a Storage for the manifest, mapping the
// memory zero value onto the field's backward-compatible zero.
func manifestStorage(s Storage) string {
	if s == StorageMemory {
		return ""
	}
	return s.String()
}

// manifestTopology renders a Topology for the manifest, mapping the
// replicated zero value onto the field's backward-compatible zero.
func manifestTopology(t Topology) string {
	if t == TopologyReplicated {
		return ""
	}
	return t.String()
}

func durWalPath(dir string, id int) string {
	return filepath.Join(dir, "wal", fmt.Sprintf("shard-%03d.wal", id))
}

func durSnapDir(dir string, id int) string {
	return filepath.Join(dir, "snap", fmt.Sprintf("shard-%03d", id))
}

func durSnapPath(sdir string, epoch uint64) string {
	return filepath.Join(sdir, fmt.Sprintf("epoch-%016d.snap", epoch))
}

// collectionFingerprint digests the structural identity of the seed
// block collection (kind, split, block keys and memberships) so the
// manifest can reject a reopen against a different artifact.
func collectionFingerprint(c *blocking.Collection) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	u64(uint64(c.Kind))
	u64(uint64(c.NumProfiles))
	u64(uint64(c.Split))
	u64(uint64(len(c.Blocks)))
	for i := range c.Blocks {
		b := &c.Blocks[i]
		h.Write([]byte(b.Key))
		u64(math.Float64bits(b.Entropy))
		u64(uint64(len(b.P1)))
		for _, p := range b.P1 {
			u64(uint64(uint32(p)))
		}
		u64(uint64(len(b.P2)))
		for _, p := range b.P2 {
			u64(uint64(uint32(p)))
		}
	}
	return h.Sum64()
}

// checkManifest verifies (or, on first open, records) the layout of a
// durable directory.
func checkManifest(dir string, want durManifest) error {
	path := filepath.Join(dir, "MANIFEST.json")
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		buf, err := json.MarshalIndent(want, "", "  ")
		if err != nil {
			return err
		}
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		return os.Rename(tmp, path)
	}
	if err != nil {
		return err
	}
	var got durManifest
	if err := json.Unmarshal(data, &got); err != nil {
		return fmt.Errorf("blast: corrupt manifest %s: %w", path, err)
	}
	if got != want {
		return fmt.Errorf("blast: durable dir %s was created as %+v; reopened as %+v", dir, got, want)
	}
	return nil
}

// durability is the write-side durable state of a Server: the open WALs
// and the sticky error that poisons admission when the logs can no
// longer be kept in agreement.
type durability struct {
	mu      sync.Mutex
	wals    []*wal.Log
	scratch []byte
	sticky  error
	// parts > 0 selects partitioned journaling: shard i's log takes only
	// the profiles it owns of each batch (by assigned id), every shard
	// still journaling every batch so record counts stay aligned. base is
	// the id the next batch's first profile will be assigned; appendBatch
	// runs under the server's admission lock, so it tracks nextID exactly.
	parts int
	base  int
}

func (d *durability) err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sticky
}

// appendBatch journals one admitted batch on every shard's WAL. On a
// partial failure the batch is rolled back off the logs that took it;
// an unrollbackable partial append poisons the server, because logs
// that disagree mid-sequence would make the next recovery fail closed.
func (d *durability) appendBatch(batch []model.Profile) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.sticky != nil {
		return d.sticky
	}
	for i, l := range d.wals {
		if d.parts > 0 {
			base := d.base
			d.scratch = wal.AppendOwnedBatch(d.scratch[:0], batch, func(k int) bool {
				return shard.Owner(int32(base+k), d.parts) == i
			})
		} else if i == 0 {
			// Replicated logs all take the identical full-batch encoding;
			// encode it once.
			d.scratch = wal.AppendBatch(d.scratch[:0], batch)
		}
		if err := l.Append(d.scratch); err != nil {
			for j := 0; j < i; j++ {
				if rbErr := d.wals[j].Truncate(d.wals[j].Records() - 1); rbErr != nil {
					d.sticky = fmt.Errorf("blast: wal rollback after append failure (%v): %w", err, rbErr)
					return d.sticky
				}
			}
			return fmt.Errorf("blast: wal append (shard %d): %w", i, err)
		}
	}
	d.base += len(batch)
	return nil
}

// close syncs and releases every WAL, reporting the first failure.
func (d *durability) close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var first error
	for _, l := range d.wals {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// snapPersister persists published snapshots for one shard on the
// SnapshotEvery cadence and prunes old files. It runs on the shard's
// worker goroutine only (plus once during recovery, before the worker
// starts), so it needs no locking.
type snapPersister struct {
	dir   string
	every int64
	keep  int
	last  int64 // Batches position of the last persisted snapshot
}

func (sp *snapPersister) persist(snap *shard.Snapshot) error {
	if snap.Batches-sp.last < sp.every {
		return nil
	}
	return sp.persistNow(snap)
}

func (sp *snapPersister) persistNow(snap *shard.Snapshot) error {
	if err := shard.WriteSnapshotFile(durSnapPath(sp.dir, snap.Epoch), snap); err != nil {
		return err
	}
	sp.last = snap.Batches
	sp.prune()
	return nil
}

// prune removes all but the newest keep snapshot files. Keeping more
// than one gives recovery a fallback should the newest file turn out
// torn or corrupt. Removal failures are ignored: stale files cost disk,
// never correctness.
func (sp *snapPersister) prune() {
	names := snapFileNames(sp.dir)
	for len(names) > sp.keep {
		os.Remove(filepath.Join(sp.dir, names[0]))
		names = names[1:]
	}
}

// snapFileNames lists a shard's snapshot files, oldest first. The
// zero-padded decimal epoch makes lexical order numeric.
func snapFileNames(sdir string) []string {
	entries, err := os.ReadDir(sdir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		if name := e.Name(); strings.HasPrefix(name, "epoch-") && strings.HasSuffix(name, ".snap") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// snapFileEpoch parses the epoch out of a snapshot file name.
func snapFileEpoch(name string) uint64 {
	var epoch uint64
	fmt.Sscanf(name, "epoch-%d.snap", &epoch)
	return epoch
}

// serveDurable is ServeBlocks' durable construction path: recover the
// on-disk state (if any), replay, and start shards wired to the WALs
// and the snapshot persisters.
func (p *Pipeline) serveDurable(ctx context.Context, blocks *Blocks, sopt ServerOptions) (*Server, error) {
	n := sopt.shards()
	dir := sopt.Dir
	if err := os.MkdirAll(filepath.Join(dir, "wal"), 0o755); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		if err := os.MkdirAll(durSnapDir(dir, i), 0o755); err != nil {
			return nil, err
		}
	}
	if p.opt.Storage == StorageFile && p.opt.SpillDir == "" {
		// Spill segments default to living alongside the WAL and the
		// snapshots: one directory to provision, one filesystem whose
		// capacity and durability characteristics the operator reasons
		// about. (They are temporary either way — the build deletes them
		// once the index materializes.)
		spill := filepath.Join(dir, "spill")
		if err := os.MkdirAll(spill, 0o755); err != nil {
			return nil, err
		}
		pp := *p
		pp.opt.SpillDir = spill
		p = &pp
	}
	master, err := p.indexBlocks(ctx, blocks, true)
	if err != nil {
		return nil, err
	}
	// A spilled master owns temporary segment files until something
	// materializes it (replay, snapshot export). If construction fails
	// before then, delete them; a successful server hands the master to
	// a shard (or discards it materialized) and clears the flag.
	masterOwned := true
	defer func() {
		if masterOwned {
			//blast:allow syncerr -- construction is already failing with a primary error; this close only reclaims temporary spill segments and must not mask it
			master.Close()
		}
	}()
	if err := checkManifest(dir, durManifest{
		Version:      durManifestVersion,
		Shards:       n,
		Kind:         master.Kind().String(),
		SeedProfiles: master.NumProfiles(),
		SeedBlocks:   collectionFingerprint(blocks.Collection),
		Topology:     manifestTopology(sopt.Topology),
		Storage:      manifestStorage(p.opt.Storage),
	}); err != nil {
		return nil, err
	}

	// Open the WALs, truncate to the common cut, decode the batches.
	logs := make([]*wal.Log, n)
	recs := make([][][]byte, n)
	closeLogs := func() {
		for _, l := range logs {
			if l != nil {
				//blast:allow syncerr -- recovery is already failing with a primary error; this close is a best-effort descriptor release and must not mask it (nothing was admitted on these logs)
				l.Close()
			}
		}
	}
	for i := range logs {
		l, payloads, err := wal.Open(durWalPath(dir, i), sopt.walSyncEvery())
		if err != nil {
			closeLogs()
			return nil, err
		}
		logs[i] = l
		recs[i] = payloads
	}
	cut := len(recs[0])
	for _, r := range recs[1:] {
		cut = min(cut, len(r))
	}
	for i := range logs {
		if err := logs[i].Truncate(cut); err != nil {
			closeLogs()
			return nil, err
		}
	}
	if sopt.Topology == TopologyPartitioned {
		return p.finishDurablePartitioned(ctx, blocks, master, sopt, dir, logs, recs, cut, closeLogs)
	}
	batches := make([][]model.Profile, cut)
	for k := 0; k < cut; k++ {
		for i := 1; i < n; i++ {
			if !bytes.Equal(recs[0][k], recs[i][k]) {
				closeLogs()
				return nil, fmt.Errorf("blast: wal record %d differs between shards 0 and %d; refusing to replay", k, i)
			}
		}
		b, err := wal.DecodeBatch(recs[0][k])
		if err != nil {
			closeLogs()
			return nil, fmt.Errorf("blast: wal record %d: %w", k, err)
		}
		batches[k] = b
	}

	// Phase 1 — pick each shard's recovery source. Cold fallbacks clone
	// the master NOW, before any replay mutates it.
	// Replicated recovery clones the master per shard and replays into
	// the clones; materialize a spilled build once up front so every
	// clone starts from resident state (the in-memory path gets this
	// for free from the snapshot export preceding its clones).
	if err := master.ensureResident(); err != nil {
		closeLogs()
		return nil, err
	}
	reps := make([]*Index, n)
	replayFrom := make([]int, n)
	epochs := make([]uint64, n)
	masterUsed := false
	for i := 0; i < n; i++ {
		ix, from, maxEpoch := p.recoverReplica(ctx, blocks, durSnapDir(dir, i), batches)
		if ix == nil {
			if masterUsed {
				ix = master.cloneForServing()
			} else {
				ix = master
				masterUsed = true
			}
			from = 0
		}
		reps[i] = ix
		replayFrom[i] = from
		if maxEpoch > 0 || cut > 0 {
			// Something was on disk (or must now be replayed): publish
			// strictly above every persisted epoch so the recovered
			// initial snapshot can itself be persisted without clobbering
			// a file recovery might still need.
			epochs[i] = maxEpoch + 1
		}
	}

	// Phase 2 — replay the WAL suffix through the ordinary insert path
	// and start the shards.
	shOpt := p.shardOptions(sopt)
	srv := &Server{
		kind:     master.Kind(),
		storage:  p.opt.Storage,
		shards:   make([]*shard.Shard, n),
		replicas: make([]*Index, n),
		pers:     make([]*snapPersister, n),
		nextID:   master.NumProfiles(),
	}
	for _, b := range batches {
		srv.nextID += len(b)
	}
	var fresh *shard.Snapshot
	for i := 0; i < n; i++ {
		rep := reps[i]
		rep.opt.Compaction = Compaction{MaxOverlayFraction: -1}
		for k, b := range batches[replayFrom[i]:] {
			if _, err := rep.InsertAll(context.Background(), b); err != nil {
				closeLogs()
				return nil, fmt.Errorf("blast: wal replay, batch %d on shard %d: %w", replayFrom[i]+k, i, err)
			}
		}
		var snap *shard.Snapshot
		if epochs[i] == 0 {
			// Fresh directory: identical to the in-memory path, one
			// shared epoch-0 snapshot of the pristine build.
			if fresh == nil {
				if fresh, err = master.exportSnapshot(ctx); err != nil {
					closeLogs()
					return nil, err
				}
			}
			snap = fresh
		} else {
			es, err := rep.exportSnapshot(ctx)
			if err != nil {
				closeLogs()
				return nil, err
			}
			//blast:allow snapshotmut -- pre-publication tag of a freshly exported private snapshot; no reader can hold it before shard.New
			es.Epoch = epochs[i]
			//blast:allow snapshotmut -- pre-publication tag of a freshly exported private snapshot; no reader can hold it before shard.New
			es.Batches = int64(cut)
			snap = es
		}
		shOptI := shOpt
		if every := sopt.snapshotEvery(); every > 0 {
			sp := &snapPersister{dir: durSnapDir(dir, i), every: every, keep: 2, last: int64(cut)}
			if epochs[i] > 0 {
				// Persist the recovered state immediately: the next crash
				// then replays only the batches admitted after this open.
				if err := sp.persistNow(snap); err != nil {
					closeLogs()
					return nil, err
				}
			}
			shOptI.Persist = sp.persist
			srv.pers[i] = sp
		}
		srv.replicas[i] = rep
		srv.shards[i] = shard.New(i, indexWriter{rep}, snap, shOptI)
	}
	srv.dur = &durability{wals: logs}
	// The master serves as a replica now (unless every shard recovered
	// from disk, in which case the deferred close reclaims any spill).
	masterOwned = !masterUsed
	return srv, nil
}

// finishDurablePartitioned is serveDurable's tail for the partitioned
// topology, entered with the logs already open and truncated to the
// common cut. Partitioned logs hold per-shard owned subsets, so
// recovery first reassembles the admitted batch sequence: per record,
// every shard's subset must decode, the batch lengths must agree, each
// profile must come from exactly the shard owning its assigned id, and
// every position must be covered — any gap or overlap fails closed.
//
// The writable side needs no snapshot-based restore: a partIndex holds
// no decision state between exports (Export rebuilds the owned CSR from
// the collection), so every shard simply replays all batches through
// the ordinary append path. The initial published snapshots come from
// the persisted owned snapshots when every shard has a usable one at
// exactly the cut — the state a drained Close leaves behind, making the
// common restart replay-free — and otherwise from slicing a full master
// rebuild over seed plus replayed batches, byte-identical to what the
// shards' own exchange-driven exports would produce.
func (p *Pipeline) finishDurablePartitioned(ctx context.Context, blocks *Blocks, master *Index, sopt ServerOptions, dir string, logs []*wal.Log, recs [][][]byte, cut int, closeLogs func()) (*Server, error) {
	n := sopt.shards()
	batches, err := reassembleOwnedBatches(recs, cut, master.NumProfiles(), n)
	if err != nil {
		closeLogs()
		return nil, err
	}
	expected := master.NumProfiles()
	for _, b := range batches {
		expected += len(b)
	}

	snaps := adoptOwnedSnapshots(dir, n, cut, expected)
	if snaps == nil {
		// No adoptable at-cut snapshot set: rebuild the union state cold
		// and slice it. The master replay runs the ordinary insert path,
		// so the sliced rows match the shards' own exports bit for bit.
		for k, b := range batches {
			if _, err := master.InsertAll(ctx, b); err != nil {
				closeLogs()
				return nil, fmt.Errorf("blast: wal replay, batch %d on master: %w", k, err)
			}
		}
		full, err := master.exportSnapshot(ctx)
		if err != nil {
			closeLogs()
			return nil, err
		}
		snaps = make([]*shard.Snapshot, n)
		for i := 0; i < n; i++ {
			snap := shard.SliceOwned(full, i, n)
			maxEpoch := uint64(0)
			for _, name := range snapFileNames(durSnapDir(dir, i)) {
				maxEpoch = max(maxEpoch, snapFileEpoch(name))
			}
			if maxEpoch > 0 || cut > 0 {
				// Same epoch discipline as the replicated recovery: publish
				// strictly above every file on disk, at the WAL cut.
				//blast:allow snapshotmut -- pre-publication tag of a freshly sliced private snapshot; no reader can hold it before shard.New
				snap.Epoch = maxEpoch + 1
				//blast:allow snapshotmut -- pre-publication tag of a freshly sliced private snapshot; no reader can hold it before shard.New
				snap.Batches = int64(cut)
			}
			snaps[i] = snap
		}
	}

	shOpt := p.shardOptions(sopt)
	// Only the deterministic SwapOps cadence may trigger exports — see
	// servePartitioned.
	shOpt.MaxOverlayFraction = 0
	ex := shard.NewExchange(n)
	shOpt.OnFail = func(err error) { ex.Poison(err) }
	srv := &Server{
		kind:     master.Kind(),
		topology: TopologyPartitioned,
		storage:  p.opt.Storage,
		shards:   make([]*shard.Shard, n),
		parts:    make([]*partIndex, n),
		pers:     make([]*snapPersister, n),
		schema:   blocks.Schema,
		nextID:   expected,
	}
	for i := 0; i < n; i++ {
		px := newPartIndex(blocks.Collection.Clone(), blocks.Schema, p.opt, i, n, ex)
		for k, b := range batches {
			if _, err := px.InsertAll(ctx, b); err != nil {
				closeLogs()
				return nil, fmt.Errorf("blast: wal replay, batch %d on shard %d: %w", k, i, err)
			}
		}
		shOptI := shOpt
		if every := sopt.snapshotEvery(); every > 0 {
			sp := &snapPersister{dir: durSnapDir(dir, i), every: every, keep: 2, last: int64(cut)}
			if snaps[i].Epoch > 0 && snaps[i].Batches == int64(cut) {
				// Rebuilt over a non-fresh directory: persist the recovered
				// state so the next open can adopt it without replay. An
				// adopted snapshot is already on disk; persistNow rewrites
				// the same bytes, which is harmless and keeps one rule.
				if err := sp.persistNow(snaps[i]); err != nil {
					closeLogs()
					return nil, err
				}
			}
			shOptI.Persist = sp.persist
			srv.pers[i] = sp
		}
		srv.parts[i] = px
		srv.shards[i] = shard.New(i, px, snaps[i], shOptI)
	}
	srv.dur = &durability{wals: logs, parts: n, base: expected}
	return srv, nil
}

// reassembleOwnedBatches rebuilds the admitted batch sequence from the
// per-shard owned-subset records, failing closed on any disagreement:
// diverging batch lengths, a profile journaled by a shard that does not
// own its assigned id, or a position no shard covers. seed is the
// profile count ids start from; within one shard the decoder already
// rejects duplicate positions, and ownership makes cross-shard overlap
// impossible, so covering every position exactly once reduces to a
// count check.
func reassembleOwnedBatches(recs [][][]byte, cut, seed, n int) ([][]model.Profile, error) {
	batches := make([][]model.Profile, cut)
	base := seed
	for k := 0; k < cut; k++ {
		var batch []model.Profile
		var have []bool
		blen, filled := -1, 0
		for i := 0; i < n; i++ {
			bl, entries, err := wal.DecodeOwnedBatch(recs[i][k])
			if err != nil {
				return nil, fmt.Errorf("blast: wal record %d (shard %d): %w", k, i, err)
			}
			if blen < 0 {
				blen = bl
				batch = make([]model.Profile, bl)
				have = make([]bool, bl)
			} else if bl != blen {
				return nil, fmt.Errorf("blast: wal record %d: batch length differs between shards 0 (%d) and %d (%d); refusing to replay", k, blen, i, bl)
			}
			for _, e := range entries {
				if shard.Owner(int32(base+e.Index), n) != i {
					return nil, fmt.Errorf("blast: wal record %d: shard %d journaled profile %d it does not own; refusing to replay", k, i, e.Index)
				}
				batch[e.Index] = e.Profile
				have[e.Index] = true
				filled++
			}
		}
		if filled != blen {
			for j, ok := range have {
				if !ok {
					return nil, fmt.Errorf("blast: wal record %d: no shard journaled profile %d of %d; refusing to replay", k, j, blen)
				}
			}
		}
		batches[k] = batch
		base += blen
	}
	return batches, nil
}

// adoptOwnedSnapshots tries to restore the initial published snapshots
// directly from disk: usable only when EVERY shard has a snapshot file
// that decodes, validates, and sits at exactly the WAL cut with the
// right partition geometry and profile count. Partitioned snapshots
// cannot be rolled forward (the writable side holds no decision state),
// so a stale or missing file on any one shard forces the whole set onto
// the cold rebuild path — adopting a mixed set would publish shards at
// different stream positions.
func adoptOwnedSnapshots(dir string, n, cut, numProfiles int) []*shard.Snapshot {
	snaps := make([]*shard.Snapshot, n)
	for i := 0; i < n; i++ {
		sdir := durSnapDir(dir, i)
		names := snapFileNames(sdir)
		for k := len(names) - 1; k >= 0; k-- {
			snap, err := shard.ReadSnapshotFile(filepath.Join(sdir, names[k]))
			if err != nil || snap.Batches != int64(cut) || snap.NumProfiles != numProfiles ||
				snap.PartShards != n || snap.PartShard != i {
				continue
			}
			snaps[i] = snap
			break
		}
		if snaps[i] == nil {
			return nil
		}
	}
	return snaps
}

// recoverReplica restores one shard's writable replica from its newest
// usable snapshot file: one that decodes and validates, covers no more
// than the WAL cut, and matches the structure rebuilt from the seed and
// its batch prefix. Unusable files fall back to older ones; a nil index
// means no snapshot was usable and the caller replays from a cold
// build. maxEpoch reports the highest epoch among the files present
// (usable or not), so new publications stay strictly above them.
func (p *Pipeline) recoverReplica(ctx context.Context, blocks *Blocks, sdir string, batches [][]model.Profile) (ix *Index, from int, maxEpoch uint64) {
	names := snapFileNames(sdir)
	for _, name := range names {
		maxEpoch = max(maxEpoch, snapFileEpoch(name))
	}
	for k := len(names) - 1; k >= 0; k-- {
		snap, err := shard.ReadSnapshotFile(filepath.Join(sdir, names[k]))
		if err != nil || snap.Batches > int64(len(batches)) {
			// Corrupt, torn, or ahead of the WAL cut (its batches are not
			// all in the admitted sequence): fail closed to older state.
			continue
		}
		rep, err := p.restoreIndex(ctx, blocks, snap, batches[:snap.Batches])
		if err != nil {
			continue
		}
		return rep, int(snap.Batches), maxEpoch
	}
	return nil, 0, maxEpoch
}
