package blast

// Differential tests of the beyond-RAM storage layer: every observable
// of a file-backed (spilled) build — MetaBlock pairs, Index pairs,
// thresholds and candidates, quiesced Server state under both
// topologies, durable recovery — must be byte-identical to the
// resident StorageMemory build. Plus the spill-specific lifecycle
// contracts: segment cleanup on Close, materialization on first
// mutation, and the manifest storage pin.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"blast/internal/metablocking"
	"blast/internal/model"
	"blast/internal/stats"
	"blast/internal/weights"
)

// fileStorageOptions returns opt flipped to file storage with a budget
// that forces the build to spill from the first page.
func fileStorageOptions(opt Options) Options {
	opt.Engine = metablocking.NodeCentric
	opt.Storage = StorageFile
	opt.MemoryBudget = 1
	return opt
}

// assertSameIndex asserts every serving observable of got matches want.
func assertSameIndex(t *testing.T, label string, want, got *Index) {
	t.Helper()
	if want.NumProfiles() != got.NumProfiles() {
		t.Fatalf("%s: NumProfiles = %d, want %d", label, got.NumProfiles(), want.NumProfiles())
	}
	assertSamePairs(t, label+" pairs", want.Pairs(), got.Pairs())
	var wantC, gotC []Candidate
	for i := 0; i < want.NumProfiles(); i++ {
		if ww, gw := want.Threshold(i), got.Threshold(i); ww != gw {
			t.Fatalf("%s: Threshold(%d) = %v, want %v", label, i, gw, ww)
		}
		wantC = want.AppendCandidates(wantC[:0], i)
		gotC = got.AppendCandidates(gotC[:0], i)
		if len(wantC) != len(gotC) {
			t.Fatalf("%s: Candidates(%d): %d, want %d", label, i, len(gotC), len(wantC))
		}
		for k := range wantC {
			if wantC[k] != gotC[k] {
				t.Fatalf("%s: Candidates(%d)[%d] = %+v, want %+v", label, i, k, gotC[k], wantC[k])
			}
		}
	}
}

// TestStorageColdDifferentialMatrix extends the Scheme x Pruning matrix
// with the Storage axis: a file-backed MetaBlock and IndexBlocks must
// be byte-identical to the resident build for every configuration.
func TestStorageColdDifferentialMatrix(t *testing.T) {
	ctx := context.Background()
	schemes := []weights.Scheme{
		{Kind: weights.ChiSquared, Entropy: true},
		{Kind: weights.CBS},
		{Kind: weights.ECBS},
		{Kind: weights.JS},
		{Kind: weights.EJS},
		{Kind: weights.ARCS, Entropy: true},
	}
	prunings := []metablocking.Pruning{
		metablocking.WEP, metablocking.CEP, metablocking.WNP1,
		metablocking.WNP2, metablocking.CNP1, metablocking.CNP2,
		metablocking.BlastWNP,
	}
	cfg := 0
	for _, scheme := range schemes {
		for _, pruning := range prunings {
			cfg++
			label := fmt.Sprintf("%s/%v", scheme.Name(), pruning)
			rng := stats.NewRNG(uint64(cfg)*0x9E3779B9 + 3)
			ds := synthDirty(rng, 60)

			memOpt := DefaultOptions()
			memOpt.Scheme = scheme
			memOpt.Pruning = pruning
			memOpt.Engine = metablocking.NodeCentric
			pMem, err := NewPipeline(memOpt)
			if err != nil {
				t.Fatal(err)
			}
			pFile, err := NewPipeline(fileStorageOptions(memOpt))
			if err != nil {
				t.Fatal(err)
			}

			memRes, err := pMem.Run(ctx, ds)
			if err != nil {
				t.Fatalf("%s: mem Run: %v", label, err)
			}
			fileRes, err := pFile.Run(ctx, ds)
			if err != nil {
				t.Fatalf("%s: file Run: %v", label, err)
			}
			assertSamePairs(t, label+" MetaBlock", memRes.Pairs, fileRes.Pairs)

			memIx, err := pMem.BuildIndex(ctx, ds)
			if err != nil {
				t.Fatalf("%s: mem BuildIndex: %v", label, err)
			}
			fileIx, err := pFile.BuildIndex(ctx, ds)
			if err != nil {
				t.Fatalf("%s: file BuildIndex: %v", label, err)
			}
			if !fileIx.Spilled() {
				t.Fatalf("%s: file-backed index did not spill under MemoryBudget=1", label)
			}
			if memIx.Spilled() {
				t.Fatalf("%s: resident index reports spilled", label)
			}
			assertSameIndex(t, label, memIx, fileIx)
			if err := fileIx.Close(); err != nil {
				t.Fatalf("%s: Close: %v", label, err)
			}
		}
	}
}

// TestStorageServerEquivalence runs the serving contract across
// Topology x shard count under file storage: the quiesced server must
// match a cold *resident* IndexBlocks over the union collection —
// cross-storage byte-equality on the full serving path.
func TestStorageServerEquivalence(t *testing.T) {
	ctx := context.Background()
	memOpt := DefaultOptions()
	memOpt.Engine = metablocking.NodeCentric
	pMem, err := NewPipeline(memOpt)
	if err != nil {
		t.Fatal(err)
	}
	pFile, err := NewPipeline(fileStorageOptions(memOpt))
	if err != nil {
		t.Fatal(err)
	}
	for _, topo := range []Topology{TopologyReplicated, TopologyPartitioned} {
		for _, shards := range []int{1, 2, 4} {
			label := fmt.Sprintf("%v/shards=%d", topo, shards)
			rng := stats.NewRNG(uint64(shards)*0xC0FFEE + uint64(topo))
			ds := synthDirty(rng, 50)
			srv, err := pFile.Serve(ctx, ds, ServerOptions{
				Shards: shards, SwapOps: 4, Topology: topo,
			})
			if err != nil {
				t.Fatalf("%s: Serve: %v", label, err)
			}
			if got := srv.Storage(); got != StorageFile {
				t.Fatalf("%s: Storage() = %v, want %v", label, got, StorageFile)
			}
			for batch := 0; batch < 2; batch++ {
				profs := make([]model.Profile, 6)
				for i := range profs {
					profs[i] = synthProfile(rng, fmt.Sprintf("sp%d-%d", batch, i))
				}
				if _, err := srv.InsertAll(ctx, profs); err != nil {
					t.Fatalf("%s: InsertAll: %v", label, err)
				}
				// The cold reference build is resident: the equivalence check
				// crosses the storage axis, not just the serving machinery.
				checkServerEquivalence(t, fmt.Sprintf("%s batch %d", label, batch), pMem, srv)
			}
			if err := srv.Close(); err != nil {
				t.Fatalf("%s: Close: %v", label, err)
			}
		}
	}
}

// TestStorageInsertMaterializes pins the mutation seam: the first
// Insert into a spilled index materializes it back to resident storage
// and the incremental state stays byte-identical to a resident index
// fed the same sequence.
func TestStorageInsertMaterializes(t *testing.T) {
	ctx := context.Background()
	rng := stats.NewRNG(0xFEED)
	ds := synthDirty(rng, 50)
	memOpt := DefaultOptions()
	memOpt.Engine = metablocking.NodeCentric
	pMem, err := NewPipeline(memOpt)
	if err != nil {
		t.Fatal(err)
	}
	pFile, err := NewPipeline(fileStorageOptions(memOpt))
	if err != nil {
		t.Fatal(err)
	}
	memIx, err := pMem.BuildIndex(ctx, ds)
	if err != nil {
		t.Fatal(err)
	}
	fileIx, err := pFile.BuildIndex(ctx, ds)
	if err != nil {
		t.Fatal(err)
	}
	if !fileIx.Spilled() {
		t.Fatal("file-backed index did not spill")
	}
	profs := make([]model.Profile, 9)
	for i := range profs {
		profs[i] = synthProfile(rng, fmt.Sprintf("ins-%d", i))
	}
	insRNG := stats.NewRNG(0xFEED) // regenerate the same profiles for the mem twin
	_ = insRNG
	for i := range profs {
		p := profs[i]
		if _, err := memIx.Insert(ctx, &p); err != nil {
			t.Fatalf("mem Insert(%d): %v", i, err)
		}
		q := profs[i]
		if _, err := fileIx.Insert(ctx, &q); err != nil {
			t.Fatalf("file Insert(%d): %v", i, err)
		}
	}
	if fileIx.Spilled() {
		t.Fatal("index still spilled after Insert: the mutation seam must materialize")
	}
	assertSameIndex(t, "post-insert", memIx, fileIx)
	if err := fileIx.Close(); err != nil {
		t.Fatalf("Close after materialization: %v", err)
	}
}

// TestStorageSpillDirLifecycle checks segment hygiene: a spilled index
// creates its segments under SpillDir and Close removes them.
func TestStorageSpillDirLifecycle(t *testing.T) {
	ctx := context.Background()
	spill := t.TempDir()
	opt := fileStorageOptions(DefaultOptions())
	opt.SpillDir = spill
	p, err := NewPipeline(opt)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := p.BuildIndex(ctx, synthDirty(stats.NewRNG(0xABCD), 50))
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Spilled() {
		t.Fatal("index did not spill")
	}
	entries, err := os.ReadDir(spill)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no spill subdirectory created under SpillDir")
	}
	if err := ix.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	entries, err = os.ReadDir(spill)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("spill segments leaked after Close: %v", entries)
	}
}

// TestDurableStorageManifestPin: the durable manifest records the
// storage mode; reopening under the other mode fails closed, and the
// durable layer parks spill segments under Dir/spill by default.
func TestDurableStorageManifestPin(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	fileOpt := fileStorageOptions(DefaultOptions())
	pFile, err := NewPipeline(fileOpt)
	if err != nil {
		t.Fatal(err)
	}
	memOpt := DefaultOptions()
	memOpt.Engine = metablocking.NodeCentric
	pMem, err := NewPipeline(memOpt)
	if err != nil {
		t.Fatal(err)
	}
	sopt := ServerOptions{Shards: 2, SwapOps: 2, Dir: dir, SyncEvery: 1}

	srv, err := pFile.Serve(ctx, durDataset(), sopt)
	if err != nil {
		t.Fatalf("durable Serve under file storage: %v", err)
	}
	if got := srv.Storage(); got != StorageFile {
		t.Fatalf("Storage() = %v, want %v", got, StorageFile)
	}
	if _, err := os.Stat(filepath.Join(dir, "spill")); err != nil {
		t.Fatalf("durable dir has no default spill directory: %v", err)
	}
	durInsert(t, srv, 0, 2)
	checkServerEquivalence(t, "durable-file", pMem, srv)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	manifest, err := os.ReadFile(filepath.Join(dir, "MANIFEST.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(manifest), `"storage": "file"`) {
		t.Fatalf("manifest does not pin file storage:\n%s", manifest)
	}

	if _, err := pMem.Serve(ctx, durDataset(), sopt); err == nil {
		t.Error("file-storage directory reopened under memory storage")
	}
	srv2, err := pFile.Serve(ctx, durDataset(), sopt)
	if err != nil {
		t.Fatalf("reopen under the pinned storage: %v", err)
	}
	checkRecovered(t, "durable-file-reopen", pMem, srv2, 2)
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}

	memDir := t.TempDir()
	memSopt := sopt
	memSopt.Dir = memDir
	srv3, err := pMem.Serve(ctx, durDataset(), memSopt)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv3.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := pFile.Serve(ctx, durDataset(), memSopt); err == nil {
		t.Error("memory-storage directory reopened under file storage")
	}
}

// TestStorageOptionValidation pins the configuration surface: the
// storage enum round-trips through ParseStorage, and the invalid
// combinations are rejected with descriptive errors at NewPipeline.
func TestStorageOptionValidation(t *testing.T) {
	for _, s := range []Storage{StorageMemory, StorageFile} {
		got, err := ParseStorage(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStorage(%q) = %v, %v; want %v", s.String(), got, err, s)
		}
	}
	if _, err := ParseStorage("tape"); err == nil {
		t.Error("ParseStorage accepted an unknown storage name")
	}

	reject := func(label string, mutate func(*Options)) {
		t.Helper()
		opt := DefaultOptions()
		mutate(&opt)
		if _, err := NewPipeline(opt); err == nil {
			t.Errorf("%s: invalid storage configuration accepted", label)
		}
	}
	reject("edge-list engine", func(o *Options) {
		o.Storage = StorageFile // default engine is EdgeList
	})
	reject("supervised", func(o *Options) {
		o.Engine = metablocking.NodeCentric
		o.Storage = StorageFile
		o.Supervised = true
	})
	reject("budget without file storage", func(o *Options) {
		o.MemoryBudget = 1 << 20
	})
	reject("spill dir without file storage", func(o *Options) {
		o.SpillDir = "x"
	})
	reject("unknown storage", func(o *Options) {
		o.Storage = Storage(42)
	})
}
