package blast

// Tests of the staged Pipeline API: option validation, byte-identical
// equivalence of legacy Run / staged phases / Index.Pairs across the
// configuration axes, context cancellation, progress reporting, and the
// candidate-serving Index.

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"blast/internal/datasets"
	"blast/internal/metablocking"
	"blast/internal/model"
	"blast/internal/stats"
	"blast/internal/weights"
)

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("DefaultOptions must validate: %v", err)
	}
	mutations := map[string]func(*Options){
		"zero value":          func(o *Options) { *o = Options{} },
		"alpha zero":          func(o *Options) { o.Alpha = 0 },
		"alpha above one":     func(o *Options) { o.Alpha = 1.5 },
		"purge zero":          func(o *Options) { o.PurgeRatio = 0 },
		"purge above one":     func(o *Options) { o.PurgeRatio = 1.01 },
		"filter negative":     func(o *Options) { o.FilterRatio = -0.2 },
		"filter above one":    func(o *Options) { o.FilterRatio = 2 },
		"c zero":              func(o *Options) { o.C = 0 },
		"c negative":          func(o *Options) { o.C = -1 },
		"d zero":              func(o *Options) { o.D = 0 },
		"k below -1":          func(o *Options) { o.K = -2 },
		"negative workers":    func(o *Options) { o.Workers = -3 },
		"unknown induction":   func(o *Options) { o.Induction = Induction(42) },
		"unknown pruning":     func(o *Options) { o.Pruning = metablocking.Pruning(42) },
		"unknown engine":      func(o *Options) { o.Engine = metablocking.Engine(42) },
		"lsh zero rows":       func(o *Options) { o.LSH = &LSHOptions{Rows: 0, Bands: 10} },
		"supervised no train": func(o *Options) { o.Supervised = true; o.TrainFraction = 0 },
	}
	for name, mutate := range mutations {
		opt := DefaultOptions()
		mutate(&opt)
		if err := opt.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid options", name)
		}
	}
	// Run and NewPipeline must reject what Validate rejects.
	bad := DefaultOptions()
	bad.C = -1
	if _, err := Run(datasets.PaperExample(), bad); err == nil {
		t.Error("Run accepted invalid options")
	}
	if _, err := NewPipeline(bad); err == nil {
		t.Error("NewPipeline accepted invalid options")
	}
}

// assertSamePairs fails unless the two pair lists are byte-identical.
func assertSamePairs(t *testing.T, label string, want, got []model.IDPair) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: pair %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// TestStagedEquivalenceMatrix: across Induction x Scheme x Pruning x
// Engine, the staged Pipeline, Index.Pairs() and legacy Run are
// byte-identical. Induction and blocking artifacts are computed once per
// induction setting and reused across the Phase 3 sweep — the workload
// shape the staged API exists for.
func TestStagedEquivalenceMatrix(t *testing.T) {
	ds := datasets.AR1(0.03, 8)
	ctx := context.Background()
	prunings := []metablocking.Pruning{
		metablocking.WEP, metablocking.CEP, metablocking.WNP1,
		metablocking.WNP2, metablocking.CNP1, metablocking.CNP2,
		metablocking.BlastWNP,
	}
	schemes := []weights.Scheme{
		{Kind: weights.ChiSquared, Entropy: true},
		{Kind: weights.JS},
	}
	for _, ind := range []Induction{LMI, AC, NoInduction} {
		base := DefaultOptions()
		base.Induction = ind
		stager, err := NewPipeline(base)
		if err != nil {
			t.Fatal(err)
		}
		sch, err := stager.InduceSchema(ctx, ds)
		if err != nil {
			t.Fatal(err)
		}
		blocks, err := stager.Block(ctx, ds, sch)
		if err != nil {
			t.Fatal(err)
		}
		for _, scheme := range schemes {
			for _, pruning := range prunings {
				for _, engine := range []metablocking.Engine{metablocking.EdgeList, metablocking.NodeCentric} {
					label := fmt.Sprintf("%v/%s/%v/%v", ind, scheme.Name(), pruning, engine)
					opt := base
					opt.Scheme = scheme
					opt.Pruning = pruning
					opt.Engine = engine
					legacy, err := Run(ds, opt)
					if err != nil {
						t.Fatalf("%s: Run: %v", label, err)
					}
					p, err := NewPipeline(opt)
					if err != nil {
						t.Fatal(err)
					}
					staged, err := p.MetaBlock(ctx, blocks)
					if err != nil {
						t.Fatalf("%s: MetaBlock: %v", label, err)
					}
					assertSamePairs(t, label+" staged", legacy.Pairs, staged.Pairs)
					if legacy.Quality != staged.Quality {
						t.Errorf("%s: quality differs: %+v vs %+v", label, legacy.Quality, staged.Quality)
					}
					ix, err := p.IndexBlocks(ctx, blocks)
					if err != nil {
						t.Fatalf("%s: IndexBlocks: %v", label, err)
					}
					assertSamePairs(t, label+" index", legacy.Pairs, ix.Pairs())
				}
			}
		}
	}
}

// TestStagedEquivalenceRandom: the same equivalence property over
// arbitrary random dirty collections and randomized configuration axes.
func TestStagedEquivalenceRandom(t *testing.T) {
	ctx := context.Background()
	f := func(raw []byte) bool {
		ds := randomDataset(raw)
		rng := stats.NewRNG(uint64(len(raw)) + 7)
		opt := DefaultOptions()
		opt.Induction = []Induction{LMI, AC, NoInduction}[rng.Intn(3)]
		opt.Scheme = weights.Scheme{
			Kind:    []weights.Kind{weights.CBS, weights.ARCS, weights.ChiSquared}[rng.Intn(3)],
			Entropy: rng.Intn(2) == 0,
		}
		opt.Pruning = []metablocking.Pruning{
			metablocking.WEP, metablocking.CEP, metablocking.WNP1, metablocking.WNP2,
			metablocking.CNP1, metablocking.CNP2, metablocking.BlastWNP,
		}[rng.Intn(7)]
		if rng.Intn(2) == 0 {
			opt.Engine = metablocking.NodeCentric
		}
		legacy, err := Run(ds, opt)
		if err != nil {
			return false
		}
		p, err := NewPipeline(opt)
		if err != nil {
			return false
		}
		staged, err := p.Run(ctx, ds)
		if err != nil {
			return false
		}
		ix, err := p.BuildIndex(ctx, ds)
		if err != nil {
			return false
		}
		ixPairs := ix.Pairs()
		if len(legacy.Pairs) != len(staged.Pairs) || len(legacy.Pairs) != len(ixPairs) {
			return false
		}
		for i := range legacy.Pairs {
			if legacy.Pairs[i] != staged.Pairs[i] || legacy.Pairs[i] != ixPairs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestIndexCandidatesConsistent: the union of every profile's candidate
// list reconstructs exactly the retained pair set, weights are ordered
// descending, and clean-clean candidates stay cross-source.
func TestIndexCandidatesConsistent(t *testing.T) {
	for _, gen := range []func() *model.Dataset{
		func() *model.Dataset { return datasets.AR1(0.05, 3) },
		func() *model.Dataset { return datasets.Census(0.2, 3) },
	} {
		ds := gen()
		p, err := NewPipeline(DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		ix, err := p.BuildIndex(context.Background(), ds)
		if err != nil {
			t.Fatal(err)
		}
		want := make(map[uint64]struct{}, ix.NumRetained())
		for _, pr := range ix.Pairs() {
			want[pr.Key()] = struct{}{}
		}
		got := make(map[uint64]struct{})
		var buf []Candidate
		for i := 0; i < ix.NumProfiles(); i++ {
			buf = ix.AppendCandidates(buf[:0], i)
			for k := 1; k < len(buf); k++ {
				if buf[k].Weight > buf[k-1].Weight {
					t.Fatalf("%s: candidates of %d not weight-descending", ds.Name, i)
				}
			}
			for _, c := range buf {
				if !ds.Comparable(i, int(c.ID)) {
					t.Fatalf("%s: candidate (%d, %d) not comparable", ds.Name, i, c.ID)
				}
				got[model.MakePair(i, int(c.ID)).Key()] = struct{}{}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("%s: candidates cover %d pairs, want %d", ds.Name, len(got), len(want))
		}
		for k := range want {
			if _, ok := got[k]; !ok {
				t.Fatalf("%s: pair %v missing from candidate lists", ds.Name, model.PairFromKey(k))
			}
		}
		// Out-of-range queries are empty (non-nil) slices, not panics.
		if got := ix.Candidates(-1); got == nil || len(got) != 0 {
			t.Errorf("Candidates(-1) = %v, want empty non-nil slice", got)
		}
		if got := ix.Candidates(ix.NumProfiles()); got == nil || len(got) != 0 {
			t.Errorf("Candidates(NumProfiles) = %v, want empty non-nil slice", got)
		}
	}
}

// TestIndexThresholds: under BlastWNP the per-node threshold is the
// node's maximum adjacent weight divided by C, exposed for the online
// serving and incremental-update paths.
func TestIndexThresholds(t *testing.T) {
	ds := datasets.AR1(0.05, 5)
	opt := DefaultOptions()
	opt.C = 4
	p, err := NewPipeline(opt)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := p.BuildIndex(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for i := 0; i < ix.NumProfiles(); i++ {
		maxW := 0.0
		for _, c := range ix.Candidates(i) {
			if c.Weight > maxW {
				maxW = c.Weight
			}
		}
		th := ix.Threshold(i)
		if maxW > 0 && th <= 0 {
			t.Fatalf("profile %d has candidates but zero threshold", i)
		}
		if th > 0 && maxW > 0 && maxW < th {
			// Candidates must clear the BLAST edge criterion, which is at
			// least theta_i/D-related; the per-node max weight can never
			// be below theta_i = max/C for C >= 1.
			t.Fatalf("profile %d: max candidate weight %v below threshold %v", i, maxW, th)
		}
		if th > 0 {
			seen++
		}
	}
	if seen == 0 {
		t.Error("no positive thresholds on a dataset with edges")
	}
	if ix.Threshold(-1) != 0 || ix.Threshold(1<<30) != 0 {
		t.Error("out-of-range thresholds must be zero")
	}
}

func TestIndexSupervisedRejected(t *testing.T) {
	opt := DefaultOptions()
	opt.Supervised = true
	p, err := NewPipeline(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.BuildIndex(context.Background(), datasets.AR1(0.03, 2)); err == nil {
		t.Error("supervised BuildIndex should error")
	}
}

// TestSchemaReuseAcrossPipelines: the headline staged scenario — one
// Schema and one Blocks artifact feeding a C sweep — matches the
// per-configuration full runs exactly.
func TestSchemaReuseAcrossPipelines(t *testing.T) {
	ds := datasets.Census(0.2, 11)
	ctx := context.Background()
	base, err := NewPipeline(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sch, err := base.InduceSchema(ctx, ds)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := base.Block(ctx, ds, sch)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []float64{1, 2, 4} {
		opt := DefaultOptions()
		opt.C = c
		sweep, err := NewPipeline(opt)
		if err != nil {
			t.Fatal(err)
		}
		staged, err := sweep.MetaBlock(ctx, blocks)
		if err != nil {
			t.Fatal(err)
		}
		full, err := Run(ds, opt)
		if err != nil {
			t.Fatal(err)
		}
		assertSamePairs(t, fmt.Sprintf("c=%v", c), full.Pairs, staged.Pairs)
	}
}

// TestPipelineCancelledContext: a context cancelled before a phase
// starts makes every phase return ctx.Err() without output.
func TestPipelineCancelledContext(t *testing.T) {
	ds := datasets.AR1(0.05, 4)
	p, err := NewPipeline(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	live := context.Background()
	sch, err := p.InduceSchema(live, ds)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := p.Block(live, ds, sch)
	if err != nil {
		t.Fatal(err)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.InduceSchema(cancelled, ds); err != context.Canceled {
		t.Errorf("InduceSchema: err = %v, want context.Canceled", err)
	}
	if _, err := p.Block(cancelled, ds, sch); err != context.Canceled {
		t.Errorf("Block: err = %v, want context.Canceled", err)
	}
	if _, err := p.MetaBlock(cancelled, blocks); err != context.Canceled {
		t.Errorf("MetaBlock: err = %v, want context.Canceled", err)
	}
	if _, err := p.IndexBlocks(cancelled, blocks); err != context.Canceled {
		t.Errorf("IndexBlocks: err = %v, want context.Canceled", err)
	}
	if _, err := p.Run(cancelled, ds); err != context.Canceled {
		t.Errorf("Run: err = %v, want context.Canceled", err)
	}

	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := p.Run(expired, ds); err != context.DeadlineExceeded {
		t.Errorf("expired Run: err = %v, want context.DeadlineExceeded", err)
	}
}

// TestPipelineCancellationMidRunNoLeak races real cancellations against
// pipeline runs (parallel workers included) and asserts that a cancelled
// run reports ctx.Err() and that no goroutines outlive their run. Run
// with -race this also exercises the worker-chunk cancellation paths for
// data races.
func TestPipelineCancellationMidRunNoLeak(t *testing.T) {
	ds := datasets.AR1(0.1, 6)
	opt := DefaultOptions()
	opt.Workers = 4
	opt.Engine = metablocking.NodeCentric
	p, err := NewPipeline(opt)
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	for _, delay := range []time.Duration{0, 100 * time.Microsecond, time.Millisecond, 5 * time.Millisecond} {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := p.Run(ctx, ds)
			done <- err
		}()
		time.Sleep(delay)
		cancel()
		select {
		case err := <-done:
			if err != nil && err != context.Canceled {
				t.Fatalf("delay %v: err = %v, want nil or context.Canceled", delay, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("delay %v: cancelled run did not return", delay)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > base {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Errorf("goroutines leaked after cancelled runs: %d > %d", n, base)
	}
}

// TestProgressObserver: the Progress callback sees every phase of a full
// staged run, in order, with non-negative durations.
func TestProgressObserver(t *testing.T) {
	ds := datasets.AR1(0.03, 9)
	var phases []string
	opt := DefaultOptions()
	opt.Progress = func(phase string, d time.Duration) {
		if d < 0 {
			t.Errorf("phase %s: negative duration", phase)
		}
		phases = append(phases, phase)
	}
	p, err := NewPipeline(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	want := []string{"induce", "block", "graph", "weight", "prune"}
	if len(phases) != len(want) {
		t.Fatalf("phases = %v, want %v", phases, want)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("phases = %v, want %v", phases, want)
		}
	}
	// BuildIndex additionally reports the index freeze.
	phases = nil
	if _, err := p.BuildIndex(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	if len(phases) == 0 || phases[len(phases)-1] != "index" {
		t.Errorf("BuildIndex phases = %v, want trailing \"index\"", phases)
	}
}

// TestMBKeyMatchesSprintf: the strconv-based restructured-block key is
// byte-identical to the fmt formulation it replaced.
func TestMBKeyMatchesSprintf(t *testing.T) {
	for _, i := range []int{0, 1, 7, 99, 1234, 99999999, 100000000, 123456789, 1 << 30} {
		want := fmt.Sprintf("mb-%08d", i)
		if got := mbKey(i); got != want {
			t.Errorf("mbKey(%d) = %q, want %q", i, got, want)
		}
	}
}
