package blast

import (
	"strings"
	"testing"

	"blast/internal/datasets"
	"blast/internal/metablocking"
	"blast/internal/model"
	"blast/internal/weights"
)

func TestRunPaperExample(t *testing.T) {
	// The Figure 1-3 walkthrough end to end: BLAST retains exactly the
	// two true matches.
	ds := datasets.PaperExample()
	opt := DefaultOptions()
	opt.PurgeRatio = 1.0  // the 4-profile example would purge "abram" at 0.5
	opt.FilterRatio = 1.0 // keep all blocks: the example has no filtering
	res, err := Run(ds, opt)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Quality.PC != 1 || res.Quality.PQ != 1 {
		t.Errorf("PC=%v PQ=%v, want 1/1 (pairs=%v)", res.Quality.PC, res.Quality.PQ, res.Pairs)
	}
	if res.Partitioning == nil || res.Partitioning.NumClusters() < 2 {
		t.Error("LMI should find clusters on the example")
	}
}

func TestRunImprovesPQOverBlocks(t *testing.T) {
	ds := datasets.AR1(0.1, 7)
	res, err := Run(ds, DefaultOptions())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Quality.PC < 0.95 {
		t.Errorf("PC = %v, want >= 0.95", res.Quality.PC)
	}
	if res.Quality.PQ < 10*res.BlockQuality.PQ {
		t.Errorf("meta-blocking PQ %v should be >> block PQ %v", res.Quality.PQ, res.BlockQuality.PQ)
	}
}

func TestRunBeatsTraditionalMetaBlocking(t *testing.T) {
	// The paper's core claim, on a scaled ar1: BLAST achieves higher F1
	// than traditional WNP with nearly identical PC (|dPC| <= 6%).
	ds := datasets.AR1(0.1, 11)
	blastRes, err := Run(ds, DefaultOptions())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	trad := DefaultOptions()
	trad.Induction = NoInduction
	trad.Scheme = weights.Scheme{Kind: weights.JS}
	trad.Pruning = metablocking.WNP2
	tradRes, err := Run(ds, trad)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if blastRes.Quality.F1 <= tradRes.Quality.F1 {
		t.Errorf("BLAST F1 %v should beat wnp2/JS %v", blastRes.Quality.F1, tradRes.Quality.F1)
	}
	if dpc := (blastRes.Quality.PC - tradRes.Quality.PC) / tradRes.Quality.PC; dpc < -0.06 {
		t.Errorf("dPC = %v, want >= -6%%", dpc)
	}
}

func TestRunDirty(t *testing.T) {
	ds := datasets.Census(0.3, 5)
	res, err := Run(ds, DefaultOptions())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Quality.PC < 0.8 {
		t.Errorf("census PC = %v, want >= 0.8", res.Quality.PC)
	}
	if res.Quality.PQ <= res.BlockQuality.PQ {
		t.Errorf("PQ should improve: %v vs %v", res.Quality.PQ, res.BlockQuality.PQ)
	}
}

func TestRunWithLSH(t *testing.T) {
	ds := datasets.AR1(0.1, 3)
	exact, err := Run(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.LSH = &LSHOptions{Rows: 5, Bands: 30, Seed: 2}
	approx, err := Run(ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	// ar1 attribute similarities are well above the ~0.5 threshold: LSH
	// must not change the outcome materially.
	if d := approx.Quality.PC - exact.Quality.PC; d < -0.02 || d > 0.02 {
		t.Errorf("LSH changed PC: %v vs %v", approx.Quality.PC, exact.Quality.PC)
	}
}

func TestRunSupervised(t *testing.T) {
	ds := datasets.AR1(0.1, 9)
	opt := DefaultOptions()
	opt.Supervised = true
	res, err := Run(ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality.PC < 0.9 || res.Quality.PQ < 0.5 {
		t.Errorf("supervised PC=%v PQ=%v, want strong on easy ar1", res.Quality.PC, res.Quality.PQ)
	}
}

func TestRunAC(t *testing.T) {
	ds := datasets.AR1(0.05, 13)
	opt := DefaultOptions()
	opt.Induction = AC
	res, err := Run(ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitioning == nil {
		t.Fatal("AC should produce a partitioning")
	}
	if res.Quality.PC < 0.9 {
		t.Errorf("AC PC = %v", res.Quality.PC)
	}
}

func TestRunValidatesDataset(t *testing.T) {
	bad := &model.Dataset{Name: "bad", Kind: model.CleanClean, E1: model.NewCollection("a")}
	if _, err := Run(bad, DefaultOptions()); err == nil {
		t.Error("invalid dataset should error")
	}
}

func TestRunUnknownInduction(t *testing.T) {
	ds := datasets.PaperExample()
	opt := DefaultOptions()
	opt.Induction = Induction(99)
	if _, err := Run(ds, opt); err == nil {
		t.Error("unknown induction should error")
	}
}

func TestRunNilTransformDefaults(t *testing.T) {
	ds := datasets.PaperExample()
	opt := DefaultOptions()
	opt.Transform = nil
	opt.PurgeRatio = 1.0
	opt.FilterRatio = 1.0
	if _, err := Run(ds, opt); err != nil {
		t.Errorf("nil transform should default: %v", err)
	}
}

func TestCleanCleanWrapper(t *testing.T) {
	gen := datasets.AR1(0.05, 21)
	res, err := CleanClean(gen.E1, gen.E2, gen.Truth, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) == 0 {
		t.Error("no pairs retained")
	}
	// nil truth allowed
	res2, err := CleanClean(gen.E1, gen.E2, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Quality.PC != 0 {
		t.Error("no truth: quality should be zero value")
	}
}

func TestDirtyWrapper(t *testing.T) {
	gen := datasets.Census(0.2, 21)
	res, err := Dirty(gen.E1, gen.Truth, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) == 0 {
		t.Error("no pairs retained")
	}
	if _, err := Dirty(gen.E1, nil, DefaultOptions()); err != nil {
		t.Errorf("nil truth should work: %v", err)
	}
}

func TestOverheadDecomposition(t *testing.T) {
	ds := datasets.AR1(0.05, 2)
	res, err := Run(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Overhead() != res.InductionTime+res.BlockTime+res.MetaTime {
		t.Error("Overhead() mismatch")
	}
}

func TestInductionString(t *testing.T) {
	if LMI.String() != "lmi" || AC.String() != "ac" || NoInduction.String() != "none" {
		t.Error("Induction.String mismatch")
	}
	if Induction(7).String() == "" {
		t.Error("unknown induction should render")
	}
}

func TestPairsComparableAndDeduplicated(t *testing.T) {
	ds := datasets.PRD(0.1, 17)
	res, err := Run(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	for _, p := range res.Pairs {
		if !ds.Comparable(int(p.U), int(p.V)) {
			t.Errorf("pair %v not comparable", p)
		}
		if seen[p.Key()] {
			t.Errorf("pair %v duplicated", p)
		}
		seen[p.Key()] = true
	}
}

func TestRestructuredBlocks(t *testing.T) {
	ds := datasets.AR1(0.05, 3)
	res, err := Run(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rb := res.RestructuredBlocks()
	if err := rb.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if rb.Len() != len(res.Pairs) {
		t.Fatalf("blocks = %d, want %d (one per pair)", rb.Len(), len(res.Pairs))
	}
	if rb.AggregateCardinality() != int64(len(res.Pairs)) {
		t.Error("each restructured block must entail exactly one comparison")
	}
	// Dirty variant.
	dd := datasets.Census(0.2, 3)
	dres, err := Run(dd, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	drb := dres.RestructuredBlocks()
	if err := drb.Validate(); err != nil {
		t.Fatalf("dirty Validate: %v", err)
	}
}

func TestLooseSchemaReport(t *testing.T) {
	ds := datasets.PaperExample()
	opt := DefaultOptions()
	opt.PurgeRatio = 1.0
	opt.FilterRatio = 1.0
	res, err := Run(ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	report := res.LooseSchemaReport()
	if report == "" || !containsAll(report, "cluster", "glue", "H=") {
		t.Errorf("report missing sections:\n%s", report)
	}
	// Induction disabled.
	opt.Induction = NoInduction
	res2, _ := Run(ds, opt)
	if res2.LooseSchemaReport() == "" {
		t.Error("disabled induction should still report")
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !strings.Contains(s, sub) {
			return false
		}
	}
	return true
}

func TestRunParallelWorkersIdentical(t *testing.T) {
	ds := datasets.PRD(0.2, 6)
	serial, err := Run(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Workers = 4
	par, err := Run(ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Pairs) != len(par.Pairs) {
		t.Fatalf("worker count changed output: %d vs %d pairs", len(serial.Pairs), len(par.Pairs))
	}
	for i := range serial.Pairs {
		if serial.Pairs[i] != par.Pairs[i] {
			t.Fatal("parallel pairs differ from serial")
		}
	}
}

// TestRunEngineIdentical: the public pipeline must return identical
// pairs (and quality) whichever meta-blocking engine is selected.
func TestRunEngineIdentical(t *testing.T) {
	for _, ds := range []*model.Dataset{datasets.AR1(0.1, 9), datasets.Census(0.2, 9)} {
		legacy, err := Run(ds, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultOptions()
		opt.Engine = metablocking.NodeCentric
		stream, err := Run(ds, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(legacy.Pairs) != len(stream.Pairs) {
			t.Fatalf("%s: engine changed output: %d vs %d pairs", ds.Name, len(legacy.Pairs), len(stream.Pairs))
		}
		for i := range legacy.Pairs {
			if legacy.Pairs[i] != stream.Pairs[i] {
				t.Fatalf("%s: node-centric pairs differ from edge-list", ds.Name)
			}
		}
		if legacy.Quality != stream.Quality {
			t.Errorf("%s: quality differs across engines", ds.Name)
		}
	}
}
