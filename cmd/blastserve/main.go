// Command blastserve runs the blasthttp front end over a blast.Server:
// a network-facing candidate-serving daemon with batched writes,
// explicit backpressure, and graceful drain.
//
// Usage:
//
//	blastserve -addr :8080 -dataset census -scale 0.1 -seed 42
//	blastserve -addr :8080 -dataset prd -dir /var/lib/blast  # durable
//
// The server bootstraps from a synthetic benchmark dataset (the same
// registry datagen and blastbench use), runs the BLAST pipeline on it,
// and serves the blasthttp API. With -dir it is durable: admitted
// batches are journaled before ids are returned, and an existing
// directory is recovered on startup.
//
// On SIGTERM or SIGINT the server drains gracefully: the listener
// stops accepting, in-flight requests finish, the write path quiesces
// (every admitted profile applied and published on every shard), a
// final snapshot is persisted (durable servers), and the process
// exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"blast"
	"blast/blasthttp"
	"blast/internal/datasets"
)

// config is the parsed command line.
type config struct {
	addr     string
	dataset  string
	scale    float64
	seed     uint64
	shards   int
	swapOps  int
	topology blast.Topology

	dir           string
	syncEvery     int
	snapshotEvery int

	maxBatch        int
	maxPending      int
	maxPendingBytes int64
	flushInterval   time.Duration
	maxBodyBytes    int64

	drainTimeout time.Duration
}

// parseFlags parses and validates the command line. Validation errors
// are usage errors: main exits 2 on them, after flag-style diagnostics
// on w.
func parseFlags(args []string, w io.Writer) (config, error) {
	fs := flag.NewFlagSet("blastserve", flag.ContinueOnError)
	fs.SetOutput(w)
	var cfg config
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:8080", "listen address (host:port)")
	fs.StringVar(&cfg.dataset, "dataset", "census", "bootstrap dataset: ar1 ar2 prd mov dbp census cora cddb paper-fig1")
	fs.Float64Var(&cfg.scale, "scale", 0.1, "fraction of paper-scale size for the bootstrap dataset")
	fs.Uint64Var(&cfg.seed, "seed", 42, "random seed for the bootstrap dataset")
	fs.IntVar(&cfg.shards, "shards", 2, "shard workers (full replicas, or row-owning partitions under -topology partitioned)")
	fs.IntVar(&cfg.swapOps, "swap-ops", 0, "publish a snapshot every N applied profiles (0 = default)")
	topology := fs.String("topology", blast.TopologyReplicated.String(), "shard topology: replicated or partitioned")
	fs.StringVar(&cfg.dir, "dir", "", "durable directory (empty = in-memory only)")
	fs.IntVar(&cfg.syncEvery, "sync-every", 0, "fsync the WALs every N admitted batches (0 = every batch)")
	fs.IntVar(&cfg.snapshotEvery, "snapshot-every", 0, "persist a snapshot every N admitted batches (0 = default)")
	fs.IntVar(&cfg.maxBatch, "max-batch", 0, "profiles coalesced into one admitted batch (0 = default)")
	fs.IntVar(&cfg.maxPending, "max-pending", 0, "insert requests in flight before 429 (0 = default)")
	fs.Int64Var(&cfg.maxPendingBytes, "max-pending-bytes", 0, "insert bytes in flight before 429 (0 = default)")
	fs.DurationVar(&cfg.flushInterval, "flush-interval", 0, "write coalescing window (0 = default)")
	fs.Int64Var(&cfg.maxBodyBytes, "max-body-bytes", 0, "largest accepted insert body (0 = default)")
	fs.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "bound on the graceful drain")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	fail := func(format string, a ...any) (config, error) {
		err := fmt.Errorf(format, a...)
		fmt.Fprintf(w, "blastserve: %v\n", err)
		fs.Usage()
		return cfg, err
	}
	if cfg.addr == "" {
		return fail("-addr must not be empty")
	}
	if cfg.dataset == "" {
		return fail("-dataset must not be empty")
	}
	if !(cfg.scale > 0) || math.IsInf(cfg.scale, 0) { // rejects NaN, 0, negative
		return fail("-scale must be a positive finite number, got %v", cfg.scale)
	}
	if cfg.shards < 1 {
		return fail("-shards must be at least 1, got %d", cfg.shards)
	}
	topo, err := blast.ParseTopology(*topology)
	if err != nil {
		return fail("-topology: %v", err)
	}
	cfg.topology = topo
	if cfg.drainTimeout <= 0 {
		return fail("-drain-timeout must be positive, got %v", cfg.drainTimeout)
	}
	return cfg, nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		os.Exit(2)
	}
	// SIGTERM/SIGINT cancel ctx; run then drains and exits cleanly. The
	// drain itself is bounded by -drain-timeout, so a wedged shard
	// cannot hold the process hostage.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	if err := run(ctx, cfg, os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "blastserve:", err)
		os.Exit(1)
	}
}

// run bootstraps the server, serves until ctx is canceled (the signal
// path) or the HTTP server fails, then drains gracefully. If ready is
// non-nil the bound listen address is sent to it once the server
// accepts connections — the test hook for -addr :0.
func run(ctx context.Context, cfg config, out io.Writer, ready chan<- string) error {
	gen, err := datasets.ByName(cfg.dataset)
	if err != nil {
		return err
	}
	ds := gen(cfg.scale, cfg.seed)
	p, err := blast.NewPipeline(blast.DefaultOptions())
	if err != nil {
		return err
	}
	srv, err := p.Serve(ctx, ds, blast.ServerOptions{
		Shards:        cfg.shards,
		Topology:      cfg.topology,
		SwapOps:       cfg.swapOps,
		Dir:           cfg.dir,
		SyncEvery:     cfg.syncEvery,
		SnapshotEvery: cfg.snapshotEvery,
	})
	if err != nil {
		return err
	}
	h := blasthttp.NewHandler(srv, blasthttp.Options{
		MaxBatch:           cfg.maxBatch,
		MaxPendingRequests: cfg.maxPending,
		MaxPendingBytes:    cfg.maxPendingBytes,
		FlushInterval:      cfg.flushInterval,
		MaxBodyBytes:       cfg.maxBodyBytes,
	})

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return errors.Join(err, h.Close(), srv.Close())
	}
	durable := ""
	if cfg.dir != "" {
		durable = ", durable " + cfg.dir
	}
	fmt.Fprintf(out, "blastserve: %s scale %g seed %d: %d profiles, %d %s shards%s\n",
		cfg.dataset, cfg.scale, cfg.seed, srv.NumProfiles(), cfg.shards, cfg.topology, durable)
	fmt.Fprintf(out, "blastserve: serving on http://%s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	hs := &http.Server{
		Handler:     h,
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return errors.Join(err, h.Close(), srv.Close())
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting and finish in-flight requests,
	// commit + publish every admitted write, then close the server —
	// which, on a durable server, persists a final snapshot at the
	// drained position so the next open restores without replay.
	fmt.Fprintln(out, "blastserve: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	var errs []error
	if err := hs.Shutdown(drainCtx); err != nil {
		errs = append(errs, fmt.Errorf("http shutdown: %w", err))
	}
	if err := h.Drain(drainCtx); err != nil {
		errs = append(errs, fmt.Errorf("drain: %w", err))
	}
	if err := h.Close(); err != nil {
		errs = append(errs, err)
	}
	published := srv.NumProfiles()
	if err := srv.Close(); err != nil {
		errs = append(errs, fmt.Errorf("server close: %w", err))
	}
	if err := errors.Join(errs...); err != nil {
		return err
	}
	fmt.Fprintf(out, "blastserve: drained, %d profiles published\n", published)
	return nil
}
