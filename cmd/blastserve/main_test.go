package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// bootProfiles extracts the seed profile count from run's boot line
// ("blastserve: <dataset> scale S seed N: P profiles, ...").
func bootProfiles(t *testing.T, out string) int {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		for i, f := range fields {
			if f == "profiles," && i > 0 {
				var p int
				if _, err := fmt.Sscanf(fields[i-1], "%d", &p); err == nil {
					return p
				}
			}
		}
	}
	t.Fatalf("no boot line in output: %s", out)
	return 0
}

func TestParseFlagsValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"empty dataset", []string{"-dataset", ""}},
		{"zero scale", []string{"-scale", "0"}},
		{"negative scale", []string{"-scale", "-1"}},
		{"nan scale", []string{"-scale", "NaN"}},
		{"inf scale", []string{"-scale", "Inf"}},
		{"zero shards", []string{"-shards", "0"}},
		{"empty addr", []string{"-addr", ""}},
		{"bad drain timeout", []string{"-drain-timeout", "0s"}},
		{"unknown topology", []string{"-topology", "mirrored"}},
		{"unknown flag", []string{"-nope"}},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		if _, err := parseFlags(tc.args, &buf); err == nil {
			t.Errorf("%s: parseFlags(%v) accepted", tc.name, tc.args)
		} else if buf.Len() == 0 {
			t.Errorf("%s: no usage diagnostics emitted", tc.name)
		}
	}
	if _, err := parseFlags([]string{"-dataset", "census", "-scale", "0.02"}, io.Discard); err != nil {
		t.Errorf("valid flags rejected: %v", err)
	}
	cfg, err := parseFlags([]string{"-topology", "partitioned", "-shards", "4"}, io.Discard)
	if err != nil {
		t.Errorf("partitioned topology rejected: %v", err)
	} else if cfg.topology.String() != "partitioned" || cfg.shards != 4 {
		t.Errorf("parsed topology %v shards %d, want partitioned/4", cfg.topology, cfg.shards)
	}
}

// TestSIGTERMGracefulDrain boots a durable server on a loopback port,
// drives writes through it, delivers a real SIGTERM to the process, and
// checks the drain contract: run exits nil, reports every admitted
// profile published, and leaves a final snapshot on disk.
func TestSIGTERMGracefulDrain(t *testing.T) {
	dir := t.TempDir()
	cfg, err := parseFlags([]string{
		"-addr", "127.0.0.1:0",
		"-dataset", "census", "-scale", "0.02", "-seed", "7",
		"-shards", "2",
		"-dir", dir,
		"-snapshot-every", "1",
		"-flush-interval", "1ms",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}

	// The same signal wiring main uses, registered in-process so the
	// kill below exercises the real SIGTERM path.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	var out bytes.Buffer
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, &out, ready) }()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited before ready: %v (output: %s)", err, out.String())
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
	}

	// Admit a few batches over the wire; the 200s are durability
	// receipts, so everything accepted here must survive the drain.
	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; i < 3; i++ {
		body := strings.NewReader(`{"profiles":[{"id":"drain-` + string(rune('a'+i)) + `","pairs":[{"name":"title","value":"graceful drain probe"}]}]}`)
		resp, err := client.Post("http://"+addr+"/v1/insert", "application/json", body)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("insert %d: status %d", i, resp.StatusCode)
		}
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain failed: %v (output: %s)", err, out.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("drain never completed (output: %s)", out.String())
	}

	if !strings.Contains(out.String(), "drained") {
		t.Errorf("no drain report in output: %s", out.String())
	}
	// The drained server must have persisted a final snapshot per shard.
	for i := 0; i < 2; i++ {
		sdir := filepath.Join(dir, "snap", []string{"shard-000", "shard-001"}[i])
		entries, err := os.ReadDir(sdir)
		if err != nil {
			t.Fatalf("shard %d snapshot dir: %v", i, err)
		}
		snaps := 0
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), "epoch-") && strings.HasSuffix(e.Name(), ".snap") {
				snaps++
			}
		}
		if snaps == 0 {
			t.Errorf("shard %d: no snapshot persisted by the drain", i)
		}
	}

	// Reopen the durable directory: recovery must restore the admitted
	// writes (replay-free, though that is a performance property; here
	// we check the receipts held).
	cfg2 := cfg
	cfg2.addr = "127.0.0.1:0"
	ctx2, cancel2 := context.WithCancel(context.Background())
	var out2 bytes.Buffer
	ready2 := make(chan string, 1)
	done2 := make(chan error, 1)
	go func() { done2 <- run(ctx2, cfg2, &out2, ready2) }()
	var addr2 string
	select {
	case addr2 = <-ready2:
	case err := <-done2:
		t.Fatalf("reopen exited before ready: %v (output: %s)", err, out2.String())
	case <-time.After(30 * time.Second):
		t.Fatal("reopened server never became ready")
	}
	resp, err := client.Post("http://"+addr2+"/v1/quiesce", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reopen quiesce: status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"admitted":`) {
		t.Fatalf("unexpected quiesce body: %s", body)
	}
	// The reopened server must serve at least the three drained inserts
	// on top of the seed.
	var q struct {
		Admitted int `json:"admitted"`
	}
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}
	if want := bootProfiles(t, out.String()) + 3; q.Admitted != want {
		t.Errorf("reopened server admitted %d profiles, want seed+inserts = %d", q.Admitted, want)
	}
	cancel2()
	if err := <-done2; err != nil {
		t.Fatalf("reopened server drain: %v (output: %s)", err, out2.String())
	}
}
