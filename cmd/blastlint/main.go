// Command blastlint runs the project's static-analysis suite — five
// analyzers that machine-check the determinism and durability
// invariants (see internal/lint and the README "Static analysis"
// section):
//
//	maporder     order-sensitive work inside for-range over a map
//	syncerr      discarded errors on the durability path
//	snapshotmut  writes to shard.Snapshot outside constructor/decode
//	ctxpoll      adjacency loops with no cancellation poll
//	wallclock    time.Now/time.Since/global rand in deterministic code
//
// Usage:
//
//	blastlint [-list] [packages]
//
// Packages default to ./... resolved against the enclosing module.
// Diagnostics print as file:line:col: [analyzer] message; the exit
// status is 2 when any diagnostic survives suppression, 1 on operational
// failure, 0 on a clean tree. Suppress a finding with a justified
// comment on (or directly above) the flagged line:
//
//	//blast:allow <analyzer> -- <justification>
//
// An allow comment without a justification — or one that suppresses
// nothing — is itself an error, so the exception inventory stays
// honest.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"blast/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: blastlint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fatal(err)
	}
	paths, err := resolvePatterns(root, flag.Args())
	if err != nil {
		fatal(err)
	}
	loader := lint.NewLoader(map[string]string{"blast": root})
	diags, err := lint.RunDirs(loader, paths, analyzers)
	if err != nil {
		fatal(err)
	}
	if len(diags) > 0 {
		lint.Print(os.Stdout, loader.Fset(), diags)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "blastlint:", err)
	os.Exit(1)
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}

// resolvePatterns maps package patterns onto import paths under the
// module. Supported: ./... (default), dir/... subtrees, and plain
// relative or blast-qualified package paths.
func resolvePatterns(root string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		}
		if pat == "." || pat == "./" {
			pat = ""
		}
		pat = strings.TrimPrefix(pat, "./")
		pat = strings.TrimPrefix(pat, "blast/")
		if pat == "blast" {
			pat = ""
		}
		base := filepath.Join(root, filepath.FromSlash(pat))
		if recursive {
			dirs, err := lint.DiscoverDirs(base)
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				add(importPathFor(root, d))
			}
			continue
		}
		if fi, err := os.Stat(base); err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("package pattern %q does not resolve to a directory", pat)
		}
		add(importPathFor(root, base))
	}
	sort.Strings(out)
	return out, nil
}

// importPathFor maps a directory under the module root onto its import
// path.
func importPathFor(root, dir string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		return "blast"
	}
	return "blast/" + filepath.ToSlash(rel)
}
