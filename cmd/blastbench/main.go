// Command blastbench regenerates the tables and figures of the BLAST
// paper's evaluation on the synthetic benchmark workloads.
//
// Usage:
//
//	blastbench -exp table4 -dataset ar1 -scale 1 -seed 42
//	blastbench -exp all
//
// The experiment ids accepted by -exp (and run in order by -exp all)
// come from one dispatch table below; the flag's usage string is
// generated from it, so the two cannot drift. -scale multiplies the
// per-dataset default sizes (see internal/experiments); absolute
// metrics depend on it, comparative structure does not. The engines
// experiment compares the edge-list and node-centric meta-blocking
// engines (time, allocation, output equality); the query experiment
// measures single-profile Index.Candidates latency and throughput on
// the registry datasets; the incremental experiment streams each
// dataset's tail through Index.Insert and reports per-insert latency
// and the amortized speedup over a cold rebuild; the serve experiment
// drives a mixed read/write load against the sharded snapshot-swap
// Server across shard counts and against the single-Index baseline;
// the recover experiment measures durable serving (WAL + snapshot
// persistence) and the cost of crash recovery, checking the recovered
// server against the pre-close state; the load experiment drives
// concurrent HTTP clients (mixed read/write) against the blasthttp
// front end over loopback, reporting insert throughput, read latency
// under churn, and a differential check that HTTP responses are
// byte-identical to in-process Server calls; the partition experiment
// compares the replicated and partitioned topologies across shard
// counts, reporting write throughput and per-shard state residency
// (partitioned shards own disjoint row slices, so per-shard memory
// must shrink as shards are added); the spill experiment compares the
// file-backed (beyond-RAM) storage mode against the resident build on
// datagen-streamed corpora exceeding the memory budget, reporting
// serving-heap ratio, on-disk segment footprint, page-cache hit rate
// and the spilled-vs-resident pairs differential.
// For the experiments marked JSON-capable in the table, -json renders
// machine-readable JSON (the CI benchmark artifacts).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"blast/internal/datasets"
	"blast/internal/experiments"
)

// experimentSpec is one -exp selection. The table is the single source
// of truth for the experiment ids: the -exp usage string, the -json
// usage string and the "all" dispatch order are all generated from it
// (main_test.go pins the generated strings against the table), so the
// help text can no longer lag a release behind the switch.
type experimentSpec struct {
	id string
	// json marks the experiments with a -json rendering (the CI
	// benchmark artifacts).
	json bool
	run  func(cfg experiments.Config, dataset string, jsonOut bool) error
}

// experimentTable lists every experiment in report order. "all" is not
// an entry: it is the synthetic id that runs the whole table.
var experimentTable = []experimentSpec{
	{id: "table2", run: runTable2},
	{id: "table3", run: runTable3},
	{id: "table4", run: runTable4},
	{id: "table5", run: runTable5},
	{id: "table6", run: runTable6},
	{id: "table7", run: runTable7},
	{id: "fig5", run: runFig5},
	{id: "fig8", run: runFig8},
	{id: "fig9", run: runFig9},
	{id: "fig10", run: runFig10},
	{id: "endtoend", run: runEndToEnd},
	{id: "scalability", run: runScalability},
	{id: "engines", json: true, run: runEngines},
	{id: "query", json: true, run: runQuery},
	{id: "incremental", json: true, run: runIncremental},
	{id: "prune", json: true, run: runPrune},
	{id: "serve", json: true, run: runServe},
	{id: "recover", json: true, run: runRecover},
	{id: "load", json: true, run: runLoad},
	{id: "partition", json: true, run: runPartition},
	{id: "spill", json: true, run: runSpill},
	{id: "baselines", run: runBaselines},
	{id: "standard", run: runStandard},
}

// expUsage generates the -exp flag's usage string from the table.
func expUsage() string {
	ids := make([]string, 0, len(experimentTable)+1)
	for _, s := range experimentTable {
		ids = append(ids, s.id)
	}
	ids = append(ids, "all")
	return "experiment id: " + strings.Join(ids, ", ")
}

// jsonUsage generates the -json flag's usage string from the table.
func jsonUsage() string {
	ids := make([]string, 0, len(experimentTable))
	for _, s := range experimentTable {
		if s.json {
			ids = append(ids, s.id)
		}
	}
	return "render the " + strings.Join(ids, "/") + " experiments as JSON"
}

func main() {
	exp := flag.String("exp", "all", expUsage())
	dataset := flag.String("dataset", "", "dataset for table4/table7/endtoend/engines/query/incremental/prune/recover (default: every applicable)")
	scale := flag.Float64("scale", 1, "scale multiplier over per-dataset defaults")
	seed := flag.Uint64("seed", 42, "random seed")
	jsonOut := flag.Bool("json", false, jsonUsage())
	flag.Parse()

	cfg := experiments.Config{Scale: *scale, Seed: *seed}
	if err := run(cfg, *exp, *dataset, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "blastbench:", err)
		os.Exit(1)
	}
}

func run(cfg experiments.Config, exp, dataset string, jsonOut bool) error {
	if exp == "all" {
		for _, s := range experimentTable {
			// Always the text rendering: interleaving one JSON array into
			// the combined report would serve neither reader.
			if err := s.run(cfg, dataset, false); err != nil {
				return fmt.Errorf("%s: %w", s.id, err)
			}
			fmt.Println()
		}
		return nil
	}
	for _, s := range experimentTable {
		if s.id == exp {
			return s.run(cfg, dataset, jsonOut)
		}
	}
	return fmt.Errorf("unknown experiment %q", exp)
}

func runTable2(cfg experiments.Config, _ string, _ bool) error {
	rows, err := experiments.Table2(cfg)
	if err != nil {
		return err
	}
	fmt.Println("== Table 2: dataset characteristics ==")
	fmt.Print(experiments.RenderTable2(rows))
	return nil
}

func runTable3(cfg experiments.Config, _ string, _ bool) error {
	rows, err := experiments.Table3(cfg, nil)
	if err != nil {
		return err
	}
	fmt.Println("== Table 3: block collections (Token Blocking ± LMI, before/after purge+filter) ==")
	fmt.Print(experiments.RenderTable3(rows))
	return nil
}

func runTable4(cfg experiments.Config, dataset string, _ bool) error {
	names := []string{"ar1", "ar2", "prd", "mov"}
	if dataset != "" {
		names = []string{dataset}
	}
	for _, name := range names {
		rows, err := experiments.Table4(cfg, name)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderCompare("Table 4 "+name, rows))
		fmt.Println()
	}
	return nil
}

func runTable5(cfg experiments.Config, _ string, _ bool) error {
	rows, err := experiments.Table5(cfg)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderCompare("Table 5 dbp (with LSH-starred rows)", rows))
	return nil
}

func runTable6(cfg experiments.Config, _ string, _ bool) error {
	rows, err := experiments.Table6(cfg)
	if err != nil {
		return err
	}
	fmt.Println("== Table 6: LMI run time vs LSH threshold ==")
	fmt.Print(experiments.RenderTable6(rows))
	return nil
}

func runTable7(cfg experiments.Config, dataset string, _ bool) error {
	names := datasets.DirtyNames()
	if dataset != "" {
		names = []string{dataset}
	}
	for _, name := range names {
		rows, err := experiments.Table7(cfg, name)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderCompare("Table 7 "+name+" (dirty ER)", rows))
		fmt.Println()
	}
	return nil
}

func runFig5(experiments.Config, string, bool) error {
	curve, th := experiments.Figure5()
	fmt.Println("== Figure 5 ==")
	fmt.Print(experiments.RenderFigure5(curve, th))
	return nil
}

func runFig8(cfg experiments.Config, _ string, _ bool) error {
	rows, err := experiments.Figure8(cfg, nil)
	if err != nil {
		return err
	}
	fmt.Println("== Figure 8: component ablation (wnp / chi / wsh / bch) ==")
	fmt.Print(experiments.RenderFigure8(rows))
	return nil
}

func runFig9(cfg experiments.Config, _ string, _ bool) error {
	rows, err := experiments.Figure9(cfg, nil)
	if err != nil {
		return err
	}
	fmt.Println("== Figure 9: LMI vs AC ==")
	fmt.Print(experiments.RenderFigure9(rows))
	return nil
}

func runFig10(cfg experiments.Config, _ string, _ bool) error {
	rows, err := experiments.Figure10(cfg)
	if err != nil {
		return err
	}
	fmt.Println("== Figure 10: PC vs LSH threshold (glue cluster disabled) ==")
	fmt.Print(experiments.RenderFigure10(rows))
	return nil
}

func runEndToEnd(cfg experiments.Config, dataset string, _ bool) error {
	name := dataset
	if name == "" {
		name = "ar1"
	}
	res, err := experiments.EndToEnd(cfg, name, 0.3)
	if err != nil {
		return err
	}
	fmt.Println("== Section 4.2.2: end-to-end comparison savings ==")
	fmt.Print(res.Render())
	return nil
}

func runScalability(cfg experiments.Config, dataset string, _ bool) error {
	name := dataset
	if name == "" {
		name = "ar1"
	}
	// workers=1: the serial baseline, comparable across machines.
	rows, err := experiments.Scalability(cfg, name, nil, 1)
	if err != nil {
		return err
	}
	fmt.Println("== Scalability: phase overhead vs dataset scale ==")
	fmt.Print(experiments.RenderScalability(name, rows))
	return nil
}

func runEngines(cfg experiments.Config, dataset string, jsonOut bool) error {
	name := dataset
	if name == "" {
		name = "ar1"
	}
	rows, err := experiments.Engines(cfg, name, nil)
	if err != nil {
		return err
	}
	if jsonOut {
		js, err := experiments.EnginesJSON(rows)
		if err != nil {
			return err
		}
		fmt.Println(string(js))
		return nil
	}
	fmt.Println("== Engines: edge-list vs node-centric meta-blocking ==")
	fmt.Print(experiments.RenderEngines(name, rows))
	return nil
}

func runQuery(cfg experiments.Config, dataset string, jsonOut bool) error {
	var names []string
	if dataset != "" {
		names = []string{dataset}
	}
	rows, err := experiments.Query(cfg, names)
	if err != nil {
		return err
	}
	if jsonOut {
		js, err := experiments.QueryJSON(rows)
		if err != nil {
			return err
		}
		fmt.Println(string(js))
		return nil
	}
	fmt.Println("== Query: online candidate serving via Index.Candidates ==")
	fmt.Print(experiments.RenderQuery(rows))
	return nil
}

func runIncremental(cfg experiments.Config, dataset string, jsonOut bool) error {
	var names []string
	if dataset != "" {
		names = []string{dataset}
	}
	rows, err := experiments.Incremental(cfg, names)
	if err != nil {
		return err
	}
	if jsonOut {
		js, err := experiments.IncrementalJSON(rows)
		if err != nil {
			return err
		}
		fmt.Println(string(js))
		return nil
	}
	fmt.Println("== Incremental: Index.Insert streaming vs cold rebuild ==")
	fmt.Print(experiments.RenderIncremental(rows))
	return nil
}

func runPrune(cfg experiments.Config, dataset string, jsonOut bool) error {
	// dataset defaults to dbp (the largest registry dataset); the
	// Pruning x Workers series is what the CI regression gate checks
	// (per-cell prune time, the 4-worker speedup floor on multi-core
	// hosts, and serial/parallel byte-equality).
	name := dataset
	rows, err := experiments.Prune(cfg, name)
	if err != nil {
		return err
	}
	if jsonOut {
		js, err := experiments.PruneJSON(rows)
		if err != nil {
			return err
		}
		fmt.Println(string(js))
		return nil
	}
	if name == "" {
		name = "dbp"
	}
	fmt.Println("== Prune: parallel streaming pruning vs serial ==")
	fmt.Print(experiments.RenderPrune(name, rows))
	return nil
}

func runServe(cfg experiments.Config, dataset string, jsonOut bool) error {
	// dataset defaults to dbp (the largest registry dataset) inside
	// Serve; shard counts 1/2/4 give the scaling series the CI
	// regression gate checks.
	rows, err := experiments.Serve(cfg, dataset, nil, 0)
	if err != nil {
		return err
	}
	if jsonOut {
		js, err := experiments.ServeJSON(rows)
		if err != nil {
			return err
		}
		fmt.Println(string(js))
		return nil
	}
	fmt.Println("== Serve: sharded snapshot-swap Server vs single Index ==")
	fmt.Print(experiments.RenderServe(rows))
	return nil
}

func runRecover(cfg experiments.Config, dataset string, jsonOut bool) error {
	// dataset defaults to census inside Recover; shard counts 1/2 x
	// modes snapshot/walreplay give the recovery series the CI
	// regression gate checks (recovery time per cell, plus the
	// recovered-state byte-equality that fails the run on divergence).
	rows, err := experiments.Recover(cfg, dataset, nil)
	if err != nil {
		return err
	}
	if jsonOut {
		js, err := experiments.RecoverJSON(rows)
		if err != nil {
			return err
		}
		fmt.Println(string(js))
		return nil
	}
	fmt.Println("== Recover: durable serving, WAL + snapshot crash recovery ==")
	fmt.Print(experiments.RenderRecover(rows))
	return nil
}

func runLoad(cfg experiments.Config, dataset string, jsonOut bool) error {
	// dataset defaults to census inside Load; client counts 2/4 give
	// the HTTP serving series the CI regression gate checks (insert
	// throughput and read p99 per cell, plus the HTTP-vs-in-process
	// byte differential the gate fails on by name when Match=false).
	rows, err := experiments.Load(cfg, dataset, nil, 0, 0)
	if err != nil {
		return err
	}
	if jsonOut {
		js, err := experiments.LoadJSON(rows)
		if err != nil {
			return err
		}
		fmt.Println(string(js))
		return nil
	}
	fmt.Println("== Load: HTTP front end under concurrent mixed traffic ==")
	fmt.Print(experiments.RenderLoad(rows))
	return nil
}

func runPartition(cfg experiments.Config, dataset string, jsonOut bool) error {
	// dataset defaults to dbp (the largest registry dataset) inside
	// Partition; shard counts 1/2/4 x both topologies give the series
	// the CI regression gate checks (per-cell write throughput, the
	// partitioned per-shard memory shrink from 1 to the largest shard
	// count, and the differential check that fails the run on
	// divergence).
	rows, err := experiments.Partition(cfg, dataset, nil)
	if err != nil {
		return err
	}
	if jsonOut {
		js, err := experiments.PartitionJSON(rows)
		if err != nil {
			return err
		}
		fmt.Println(string(js))
		return nil
	}
	fmt.Println("== Partition: replicated vs partitioned topology across shard counts ==")
	fmt.Print(experiments.RenderPartition(rows))
	return nil
}

func runSpill(cfg experiments.Config, _ string, jsonOut bool) error {
	// Corpus sizes default inside Spill (datagen-streamed, every point
	// exceeding the fixed memory budget); the CI regression gate checks
	// per-point serving-heap ratio and cache hit rate, and fails by name
	// on a non-spilled row or a spilled-vs-resident pairs divergence.
	rows, err := experiments.Spill(cfg, nil)
	if err != nil {
		return err
	}
	if jsonOut {
		js, err := experiments.SpillJSON(rows)
		if err != nil {
			return err
		}
		fmt.Println(string(js))
		return nil
	}
	fmt.Println("== Spill: file-backed beyond-RAM storage vs resident build ==")
	fmt.Print(experiments.RenderSpill(rows))
	return nil
}

func runBaselines(cfg experiments.Config, dataset string, _ bool) error {
	name := dataset
	if name == "" {
		name = "ar1"
	}
	rows, err := experiments.Baselines(cfg, name)
	if err != nil {
		return err
	}
	fmt.Println("== Extension: blocking substrates feeding BLAST meta-blocking ==")
	fmt.Print(experiments.RenderBaselines(name, rows))
	return nil
}

func runStandard(cfg experiments.Config, _ string, _ bool) error {
	rows, err := experiments.StandardBlocking(cfg, nil)
	if err != nil {
		return err
	}
	fmt.Println("== Section 4.1: Blast vs schema-based Standard Blocking ==")
	fmt.Print(experiments.RenderStandard(rows))
	return nil
}
