// Command blastbench regenerates the tables and figures of the BLAST
// paper's evaluation on the synthetic benchmark workloads.
//
// Usage:
//
//	blastbench -exp table4 -dataset ar1 -scale 1 -seed 42
//	blastbench -exp all
//
// Experiments: table2 table3 table4 table5 table6 table7 fig5 fig8 fig9
// fig10 endtoend scalability engines query incremental prune serve
// recover load partition baselines standard all. -scale multiplies the per-dataset default sizes (see
// internal/experiments); absolute metrics depend on it, comparative
// structure does not. The engines experiment compares the edge-list and
// node-centric meta-blocking engines (time, allocation, output
// equality); the query experiment measures single-profile
// Index.Candidates latency and throughput on the registry datasets; the
// incremental experiment streams each dataset's tail through
// Index.Insert and reports per-insert latency and the amortized speedup
// over a cold rebuild; the serve experiment drives a mixed read/write
// load against the sharded snapshot-swap Server across shard counts and
// against the single-Index baseline; the recover experiment measures
// durable serving (WAL + snapshot persistence) and the cost of crash
// recovery, checking the recovered server against the pre-close state;
// the load experiment drives concurrent HTTP clients (mixed read/write)
// against the blasthttp front end over loopback, reporting insert
// throughput, read latency under churn, and a differential check that
// HTTP responses are byte-identical to in-process Server calls; the
// partition experiment compares the replicated and partitioned
// topologies across shard counts, reporting write throughput and
// per-shard state residency (partitioned shards own disjoint row
// slices, so per-shard memory must shrink as shards are added).
// For all eight, -json renders machine-readable JSON (the CI benchmark
// artifacts).
package main

import (
	"flag"
	"fmt"
	"os"

	"blast/internal/datasets"
	"blast/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: table2..table7, fig5, fig8, fig9, fig10, endtoend, scalability, engines, query, incremental, prune, serve, recover, load, partition, baselines, all")
	dataset := flag.String("dataset", "", "dataset for table4/table7/endtoend/engines/query/incremental/prune/recover (default: every applicable)")
	scale := flag.Float64("scale", 1, "scale multiplier over per-dataset defaults")
	seed := flag.Uint64("seed", 42, "random seed")
	jsonOut := flag.Bool("json", false, "render the engines/query/incremental/prune/serve/recover/load/partition experiments as JSON")
	flag.Parse()

	cfg := experiments.Config{Scale: *scale, Seed: *seed}
	if err := run(cfg, *exp, *dataset, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "blastbench:", err)
		os.Exit(1)
	}
}

func run(cfg experiments.Config, exp, dataset string, jsonOut bool) error {
	switch exp {
	case "table2":
		rows, err := experiments.Table2(cfg)
		if err != nil {
			return err
		}
		fmt.Println("== Table 2: dataset characteristics ==")
		fmt.Print(experiments.RenderTable2(rows))
	case "table3":
		rows, err := experiments.Table3(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Println("== Table 3: block collections (Token Blocking ± LMI, before/after purge+filter) ==")
		fmt.Print(experiments.RenderTable3(rows))
	case "table4":
		names := []string{"ar1", "ar2", "prd", "mov"}
		if dataset != "" {
			names = []string{dataset}
		}
		for _, name := range names {
			rows, err := experiments.Table4(cfg, name)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderCompare("Table 4 "+name, rows))
			fmt.Println()
		}
	case "table5":
		rows, err := experiments.Table5(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderCompare("Table 5 dbp (with LSH-starred rows)", rows))
	case "table6":
		rows, err := experiments.Table6(cfg)
		if err != nil {
			return err
		}
		fmt.Println("== Table 6: LMI run time vs LSH threshold ==")
		fmt.Print(experiments.RenderTable6(rows))
	case "table7":
		names := datasets.DirtyNames()
		if dataset != "" {
			names = []string{dataset}
		}
		for _, name := range names {
			rows, err := experiments.Table7(cfg, name)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderCompare("Table 7 "+name+" (dirty ER)", rows))
			fmt.Println()
		}
	case "fig5":
		curve, th := experiments.Figure5()
		fmt.Println("== Figure 5 ==")
		fmt.Print(experiments.RenderFigure5(curve, th))
	case "fig8":
		rows, err := experiments.Figure8(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Println("== Figure 8: component ablation (wnp / chi / wsh / bch) ==")
		fmt.Print(experiments.RenderFigure8(rows))
	case "fig9":
		rows, err := experiments.Figure9(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Println("== Figure 9: LMI vs AC ==")
		fmt.Print(experiments.RenderFigure9(rows))
	case "fig10":
		rows, err := experiments.Figure10(cfg)
		if err != nil {
			return err
		}
		fmt.Println("== Figure 10: PC vs LSH threshold (glue cluster disabled) ==")
		fmt.Print(experiments.RenderFigure10(rows))
	case "endtoend":
		name := dataset
		if name == "" {
			name = "ar1"
		}
		res, err := experiments.EndToEnd(cfg, name, 0.3)
		if err != nil {
			return err
		}
		fmt.Println("== Section 4.2.2: end-to-end comparison savings ==")
		fmt.Print(res.Render())
	case "scalability":
		name := dataset
		if name == "" {
			name = "ar1"
		}
		// workers=1: the serial baseline, comparable across machines.
		rows, err := experiments.Scalability(cfg, name, nil, 1)
		if err != nil {
			return err
		}
		fmt.Println("== Scalability: phase overhead vs dataset scale ==")
		fmt.Print(experiments.RenderScalability(name, rows))
	case "engines":
		name := dataset
		if name == "" {
			name = "ar1"
		}
		rows, err := experiments.Engines(cfg, name, nil)
		if err != nil {
			return err
		}
		if jsonOut {
			js, err := experiments.EnginesJSON(rows)
			if err != nil {
				return err
			}
			fmt.Println(string(js))
			return nil
		}
		fmt.Println("== Engines: edge-list vs node-centric meta-blocking ==")
		fmt.Print(experiments.RenderEngines(name, rows))
	case "query":
		var names []string
		if dataset != "" {
			names = []string{dataset}
		}
		rows, err := experiments.Query(cfg, names)
		if err != nil {
			return err
		}
		if jsonOut {
			js, err := experiments.QueryJSON(rows)
			if err != nil {
				return err
			}
			fmt.Println(string(js))
			return nil
		}
		fmt.Println("== Query: online candidate serving via Index.Candidates ==")
		fmt.Print(experiments.RenderQuery(rows))
	case "incremental":
		var names []string
		if dataset != "" {
			names = []string{dataset}
		}
		rows, err := experiments.Incremental(cfg, names)
		if err != nil {
			return err
		}
		if jsonOut {
			js, err := experiments.IncrementalJSON(rows)
			if err != nil {
				return err
			}
			fmt.Println(string(js))
			return nil
		}
		fmt.Println("== Incremental: Index.Insert streaming vs cold rebuild ==")
		fmt.Print(experiments.RenderIncremental(rows))
	case "prune":
		// dataset defaults to dbp (the largest registry dataset); the
		// Pruning x Workers series is what the CI regression gate checks
		// (per-cell prune time, the 4-worker speedup floor on multi-core
		// hosts, and serial/parallel byte-equality).
		name := dataset
		rows, err := experiments.Prune(cfg, name)
		if err != nil {
			return err
		}
		if jsonOut {
			js, err := experiments.PruneJSON(rows)
			if err != nil {
				return err
			}
			fmt.Println(string(js))
			return nil
		}
		if name == "" {
			name = "dbp"
		}
		fmt.Println("== Prune: parallel streaming pruning vs serial ==")
		fmt.Print(experiments.RenderPrune(name, rows))
	case "serve":
		// dataset defaults to dbp (the largest registry dataset) inside
		// Serve; shard counts 1/2/4 give the scaling series the CI
		// regression gate checks.
		rows, err := experiments.Serve(cfg, dataset, nil, 0)
		if err != nil {
			return err
		}
		if jsonOut {
			js, err := experiments.ServeJSON(rows)
			if err != nil {
				return err
			}
			fmt.Println(string(js))
			return nil
		}
		fmt.Println("== Serve: sharded snapshot-swap Server vs single Index ==")
		fmt.Print(experiments.RenderServe(rows))
	case "recover":
		// dataset defaults to census inside Recover; shard counts 1/2 x
		// modes snapshot/walreplay give the recovery series the CI
		// regression gate checks (recovery time per cell, plus the
		// recovered-state byte-equality that fails the run on divergence).
		rows, err := experiments.Recover(cfg, dataset, nil)
		if err != nil {
			return err
		}
		if jsonOut {
			js, err := experiments.RecoverJSON(rows)
			if err != nil {
				return err
			}
			fmt.Println(string(js))
			return nil
		}
		fmt.Println("== Recover: durable serving, WAL + snapshot crash recovery ==")
		fmt.Print(experiments.RenderRecover(rows))
	case "load":
		// dataset defaults to census inside Load; client counts 2/4 give
		// the HTTP serving series the CI regression gate checks (insert
		// throughput and read p99 per cell, plus the HTTP-vs-in-process
		// byte differential the gate fails on by name when Match=false).
		rows, err := experiments.Load(cfg, dataset, nil, 0, 0)
		if err != nil {
			return err
		}
		if jsonOut {
			js, err := experiments.LoadJSON(rows)
			if err != nil {
				return err
			}
			fmt.Println(string(js))
			return nil
		}
		fmt.Println("== Load: HTTP front end under concurrent mixed traffic ==")
		fmt.Print(experiments.RenderLoad(rows))
	case "partition":
		// dataset defaults to dbp (the largest registry dataset) inside
		// Partition; shard counts 1/2/4 x both topologies give the series
		// the CI regression gate checks (per-cell write throughput, the
		// partitioned per-shard memory shrink from 1 to the largest shard
		// count, and the differential check that fails the run on
		// divergence).
		rows, err := experiments.Partition(cfg, dataset, nil)
		if err != nil {
			return err
		}
		if jsonOut {
			js, err := experiments.PartitionJSON(rows)
			if err != nil {
				return err
			}
			fmt.Println(string(js))
			return nil
		}
		fmt.Println("== Partition: replicated vs partitioned topology across shard counts ==")
		fmt.Print(experiments.RenderPartition(rows))
	case "baselines":
		name := dataset
		if name == "" {
			name = "ar1"
		}
		rows, err := experiments.Baselines(cfg, name)
		if err != nil {
			return err
		}
		fmt.Println("== Extension: blocking substrates feeding BLAST meta-blocking ==")
		fmt.Print(experiments.RenderBaselines(name, rows))
	case "standard":
		rows, err := experiments.StandardBlocking(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Println("== Section 4.1: Blast vs schema-based Standard Blocking ==")
		fmt.Print(experiments.RenderStandard(rows))
	case "all":
		for _, e := range []string{"table2", "table3", "table4", "table5", "table6", "table7",
			"fig5", "fig8", "fig9", "fig10", "endtoend", "scalability", "engines", "query", "incremental", "prune", "serve", "recover", "load", "partition", "baselines", "standard"} {
			// Always the text rendering: interleaving one JSON array into
			// the combined report would serve neither reader.
			if err := run(cfg, e, dataset, false); err != nil {
				return fmt.Errorf("%s: %w", e, err)
			}
			fmt.Println()
		}
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
