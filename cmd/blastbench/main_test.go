package main

import (
	"testing"

	"blast/internal/experiments"
)

func tinyCfg() experiments.Config { return experiments.Config{Scale: 0.15, Seed: 42} }

func TestRunFastExperiments(t *testing.T) {
	// The cheap experiments exercise the whole dispatch path.
	for _, exp := range []string{"fig5", "table2"} {
		if err := run(tinyCfg(), exp, ""); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
}

func TestRunSingleDatasetSelectors(t *testing.T) {
	if err := run(tinyCfg(), "table4", "ar1"); err != nil {
		t.Errorf("table4 ar1: %v", err)
	}
	if err := run(tinyCfg(), "table7", "census"); err != nil {
		t.Errorf("table7 census: %v", err)
	}
	if err := run(tinyCfg(), "endtoend", "prd"); err != nil {
		t.Errorf("endtoend prd: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(tinyCfg(), "table99", ""); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunUnknownDataset(t *testing.T) {
	if err := run(tinyCfg(), "table4", "nope"); err == nil {
		t.Error("unknown dataset should error")
	}
}
