package main

import (
	"strings"
	"testing"

	"blast/internal/experiments"
)

func tinyCfg() experiments.Config { return experiments.Config{Scale: 0.15, Seed: 42} }

func TestRunFastExperiments(t *testing.T) {
	// The cheap experiments exercise the whole dispatch path.
	for _, exp := range []string{"fig5", "table2"} {
		if err := run(tinyCfg(), exp, "", false); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
}

func TestRunSingleDatasetSelectors(t *testing.T) {
	if err := run(tinyCfg(), "table4", "ar1", false); err != nil {
		t.Errorf("table4 ar1: %v", err)
	}
	if err := run(tinyCfg(), "table7", "census", false); err != nil {
		t.Errorf("table7 census: %v", err)
	}
	if err := run(tinyCfg(), "endtoend", "prd", false); err != nil {
		t.Errorf("endtoend prd: %v", err)
	}
}

func TestRunEnginesExperiment(t *testing.T) {
	if err := run(tinyCfg(), "engines", "ar1", false); err != nil {
		t.Errorf("engines text: %v", err)
	}
	if err := run(tinyCfg(), "engines", "ar1", true); err != nil {
		t.Errorf("engines json: %v", err)
	}
}

func TestRunQueryExperiment(t *testing.T) {
	if err := run(tinyCfg(), "query", "ar1", false); err != nil {
		t.Errorf("query text: %v", err)
	}
	if err := run(tinyCfg(), "query", "census", true); err != nil {
		t.Errorf("query json: %v", err)
	}
}

func TestRunIncrementalExperiment(t *testing.T) {
	if err := run(tinyCfg(), "incremental", "ar1", false); err != nil {
		t.Errorf("incremental text: %v", err)
	}
	if err := run(tinyCfg(), "incremental", "census", true); err != nil {
		t.Errorf("incremental json: %v", err)
	}
}

func TestRunServeExperiment(t *testing.T) {
	if err := run(tinyCfg(), "serve", "ar1", false); err != nil {
		t.Errorf("serve text: %v", err)
	}
	if err := run(tinyCfg(), "serve", "census", true); err != nil {
		t.Errorf("serve json: %v", err)
	}
}

func TestRunRecoverExperiment(t *testing.T) {
	if err := run(tinyCfg(), "recover", "ar1", false); err != nil {
		t.Errorf("recover text: %v", err)
	}
	if err := run(tinyCfg(), "recover", "census", true); err != nil {
		t.Errorf("recover json: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(tinyCfg(), "table99", "", false); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunUnknownDataset(t *testing.T) {
	if err := run(tinyCfg(), "table4", "nope", false); err == nil {
		t.Error("unknown dataset should error")
	}
}

// TestUsageMatchesExperimentTable pins the generated flag help against
// the dispatch table: every experiment id appears exactly once in the
// -exp usage string (plus the synthetic "all"), the JSON-capable subset
// drives the -json usage string, and the table itself is well-formed
// (unique ids, no reserved "all" entry, a run function per row). The
// usage text can no longer lag the switch by a release, because there
// is no switch — the table is the only dispatch.
func TestUsageMatchesExperimentTable(t *testing.T) {
	seen := make(map[string]bool, len(experimentTable))
	var ids, jsonIDs []string
	for _, s := range experimentTable {
		if s.id == "all" {
			t.Fatalf("table entry uses the reserved id %q", s.id)
		}
		if seen[s.id] {
			t.Fatalf("duplicate table entry %q", s.id)
		}
		seen[s.id] = true
		if s.run == nil {
			t.Fatalf("table entry %q has no run function", s.id)
		}
		ids = append(ids, s.id)
		if s.json {
			jsonIDs = append(jsonIDs, s.id)
		}
	}
	wantExp := "experiment id: " + strings.Join(append(ids, "all"), ", ")
	if got := expUsage(); got != wantExp {
		t.Errorf("expUsage() = %q, want %q", got, wantExp)
	}
	wantJSON := "render the " + strings.Join(jsonIDs, "/") + " experiments as JSON"
	if got := jsonUsage(); got != wantJSON {
		t.Errorf("jsonUsage() = %q, want %q", got, wantJSON)
	}
	// The satellite experiments the historical drift dropped from the
	// usage string stay pinned by name.
	for _, id := range []string{"standard", "spill"} {
		if !seen[id] {
			t.Errorf("experiment %q missing from the dispatch table", id)
		}
	}
}

func TestRunSpillExperiment(t *testing.T) {
	if err := run(tinyCfg(), "spill", "", false); err != nil {
		t.Errorf("spill text: %v", err)
	}
	if err := run(tinyCfg(), "spill", "", true); err != nil {
		t.Errorf("spill json: %v", err)
	}
}
