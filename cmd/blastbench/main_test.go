package main

import (
	"testing"

	"blast/internal/experiments"
)

func tinyCfg() experiments.Config { return experiments.Config{Scale: 0.15, Seed: 42} }

func TestRunFastExperiments(t *testing.T) {
	// The cheap experiments exercise the whole dispatch path.
	for _, exp := range []string{"fig5", "table2"} {
		if err := run(tinyCfg(), exp, "", false); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
}

func TestRunSingleDatasetSelectors(t *testing.T) {
	if err := run(tinyCfg(), "table4", "ar1", false); err != nil {
		t.Errorf("table4 ar1: %v", err)
	}
	if err := run(tinyCfg(), "table7", "census", false); err != nil {
		t.Errorf("table7 census: %v", err)
	}
	if err := run(tinyCfg(), "endtoend", "prd", false); err != nil {
		t.Errorf("endtoend prd: %v", err)
	}
}

func TestRunEnginesExperiment(t *testing.T) {
	if err := run(tinyCfg(), "engines", "ar1", false); err != nil {
		t.Errorf("engines text: %v", err)
	}
	if err := run(tinyCfg(), "engines", "ar1", true); err != nil {
		t.Errorf("engines json: %v", err)
	}
}

func TestRunQueryExperiment(t *testing.T) {
	if err := run(tinyCfg(), "query", "ar1", false); err != nil {
		t.Errorf("query text: %v", err)
	}
	if err := run(tinyCfg(), "query", "census", true); err != nil {
		t.Errorf("query json: %v", err)
	}
}

func TestRunIncrementalExperiment(t *testing.T) {
	if err := run(tinyCfg(), "incremental", "ar1", false); err != nil {
		t.Errorf("incremental text: %v", err)
	}
	if err := run(tinyCfg(), "incremental", "census", true); err != nil {
		t.Errorf("incremental json: %v", err)
	}
}

func TestRunServeExperiment(t *testing.T) {
	if err := run(tinyCfg(), "serve", "ar1", false); err != nil {
		t.Errorf("serve text: %v", err)
	}
	if err := run(tinyCfg(), "serve", "census", true); err != nil {
		t.Errorf("serve json: %v", err)
	}
}

func TestRunRecoverExperiment(t *testing.T) {
	if err := run(tinyCfg(), "recover", "ar1", false); err != nil {
		t.Errorf("recover text: %v", err)
	}
	if err := run(tinyCfg(), "recover", "census", true); err != nil {
		t.Errorf("recover json: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(tinyCfg(), "table99", "", false); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunUnknownDataset(t *testing.T) {
	if err := run(tinyCfg(), "table4", "nope", false); err == nil {
		t.Error("unknown dataset should error")
	}
}
