package main

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"blast/internal/datasets"
)

func TestRunWritesCleanCleanFiles(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run(config{name: "prd", scale: 0.03, seed: 7, dir: dir}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, f := range []string{"prd-E1.csv", "prd-E2.csv", "prd-truth.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
		if !strings.Contains(out.String(), f) {
			t.Errorf("no 'wrote' line for %s in output: %s", f, out.String())
		}
	}
	// Files must round-trip through the loaders.
	f1, err := os.Open(filepath.Join(dir, "prd-E1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f1.Close()
	e1, err := datasets.ReadCollection(f1, "E1")
	if err != nil {
		t.Fatalf("ReadCollection: %v", err)
	}
	want := datasets.PRD(0.03, 7)
	if e1.Len() != want.E1.Len() {
		t.Errorf("round trip: %d profiles, want %d", e1.Len(), want.E1.Len())
	}
}

func TestRunWritesDirtyFiles(t *testing.T) {
	dir := t.TempDir()
	if err := run(config{name: "census", scale: 0.05, seed: 7, dir: dir}, io.Discard); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "census-E2.csv")); err == nil {
		t.Error("dirty dataset should not write E2")
	}
	f, err := os.Open(filepath.Join(dir, "census-truth.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds := datasets.Census(0.05, 7)
	truth, err := datasets.ReadTruth(f, ds)
	if err != nil {
		t.Fatalf("ReadTruth: %v", err)
	}
	if truth.Size() != ds.Truth.Size() {
		t.Errorf("truth round trip: %d, want %d", truth.Size(), ds.Truth.Size())
	}
}

func TestRunUnknownDataset(t *testing.T) {
	if err := run(config{name: "nope", scale: 0.1, seed: 1, dir: t.TempDir()}, io.Discard); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestRunStreamingMode(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run(config{name: "stream", seed: 5, dir: dir, profiles: 300}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(filepath.Join(dir, "stream-E1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	e1, err := datasets.ReadCollection(f, "stream")
	if err != nil {
		t.Fatalf("ReadCollection: %v", err)
	}
	if e1.Len() != 300 {
		t.Errorf("streamed corpus has %d profiles, want 300", e1.Len())
	}
	// The truth file must reference ids present in E1.
	s := datasets.NewStream(300, 5)
	tf, err := os.Open(filepath.Join(dir, "stream-truth.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	truth, err := datasets.ReadTruth(tf, s.Dataset())
	if err != nil {
		t.Fatalf("ReadTruth: %v", err)
	}
	if truth.Size() != 30 {
		t.Errorf("streamed truth has %d pairs, want 30", truth.Size())
	}
}

func TestParseFlagsValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"empty dataset", []string{"-dataset", ""}},
		{"zero scale", []string{"-scale", "0"}},
		{"negative scale", []string{"-scale", "-0.5"}},
		{"nan scale", []string{"-scale", "NaN"}},
		{"inf scale", []string{"-scale", "Inf"}},
		{"empty dir", []string{"-dir", ""}},
		{"negative profiles", []string{"-profiles", "-1"}},
		{"unknown flag", []string{"-bogus"}},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		if _, err := parseFlags(tc.args, &buf); err == nil {
			t.Errorf("%s: parseFlags(%v) accepted", tc.name, tc.args)
		} else if buf.Len() == 0 {
			t.Errorf("%s: no usage diagnostics emitted", tc.name)
		}
	}
	// Valid lines parse; streaming mode tolerates the unused scale.
	if _, err := parseFlags([]string{"-dataset", "census", "-scale", "0.2"}, io.Discard); err != nil {
		t.Errorf("valid flags rejected: %v", err)
	}
	if cfg, err := parseFlags([]string{"-profiles", "1000", "-scale", "0"}, io.Discard); err != nil {
		t.Errorf("streaming flags rejected: %v", err)
	} else if cfg.profiles != 1000 {
		t.Errorf("profiles = %d, want 1000", cfg.profiles)
	}
}

// failingWriter fails mid-write and again on close — the regression
// shape of the old write helper, which discarded the close error on
// exactly this path and printed "wrote" before closing.
type failingWriter struct {
	writeErr error
	closeErr error
}

func (f *failingWriter) Write(p []byte) (int, error) { return 0, f.writeErr }
func (f *failingWriter) Close() error                { return f.closeErr }

// syncFailWriter writes fine but cannot sync.
type syncFailWriter struct {
	syncErr error
	closed  bool
}

func (s *syncFailWriter) Write(p []byte) (int, error) { return len(p), nil }
func (s *syncFailWriter) Sync() error                 { return s.syncErr }
func (s *syncFailWriter) Close() error                { s.closed = true; return nil }

func TestWriteAllJoinsErrors(t *testing.T) {
	writeErr := errors.New("disk full")
	closeErr := errors.New("close failed")
	err := writeAll(&failingWriter{writeErr: writeErr, closeErr: closeErr}, func(w io.Writer) error {
		_, err := w.Write([]byte("row\n"))
		return err
	})
	if !errors.Is(err, writeErr) {
		t.Errorf("write error lost: %v", err)
	}
	if !errors.Is(err, closeErr) {
		t.Errorf("close error discarded on the mid-write failure path: %v", err)
	}

	// A clean write that cannot sync must fail — and still close.
	syncErr := errors.New("sync failed")
	sw := &syncFailWriter{syncErr: syncErr}
	err = writeAll(sw, func(w io.Writer) error { _, err := w.Write([]byte("x")); return err })
	if !errors.Is(err, syncErr) {
		t.Errorf("sync error lost: %v", err)
	}
	if !sw.closed {
		t.Error("writer not closed after sync failure")
	}
}

func TestWriteCSVAnnouncesOnlyAfterSuccess(t *testing.T) {
	// Success: exactly one "wrote" line, after the file exists.
	dir := t.TempDir()
	var out bytes.Buffer
	path := filepath.Join(dir, "ok.csv")
	if err := writeCSV(path, &out, func(w io.Writer) error {
		_, err := io.WriteString(w, "id,attribute,value\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote "+path) {
		t.Errorf("no wrote line: %q", out.String())
	}

	// Failure: no "wrote" line may appear.
	out.Reset()
	boom := errors.New("boom")
	err := writeCSV(filepath.Join(dir, "bad.csv"), &out, func(io.Writer) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("writer error lost: %v", err)
	}
	if out.Len() != 0 {
		t.Errorf("failure path printed output: %q", out.String())
	}
}
