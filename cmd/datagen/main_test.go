package main

import (
	"os"
	"path/filepath"
	"testing"

	"blast/internal/datasets"
)

func TestRunWritesCleanCleanFiles(t *testing.T) {
	dir := t.TempDir()
	if err := run("prd", 0.03, 7, dir); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, f := range []string{"prd-E1.csv", "prd-E2.csv", "prd-truth.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}
	// Files must round-trip through the loaders.
	f1, err := os.Open(filepath.Join(dir, "prd-E1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f1.Close()
	e1, err := datasets.ReadCollection(f1, "E1")
	if err != nil {
		t.Fatalf("ReadCollection: %v", err)
	}
	want := datasets.PRD(0.03, 7)
	if e1.Len() != want.E1.Len() {
		t.Errorf("round trip: %d profiles, want %d", e1.Len(), want.E1.Len())
	}
}

func TestRunWritesDirtyFiles(t *testing.T) {
	dir := t.TempDir()
	if err := run("census", 0.05, 7, dir); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "census-E2.csv")); err == nil {
		t.Error("dirty dataset should not write E2")
	}
	f, err := os.Open(filepath.Join(dir, "census-truth.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds := datasets.Census(0.05, 7)
	truth, err := datasets.ReadTruth(f, ds)
	if err != nil {
		t.Fatalf("ReadTruth: %v", err)
	}
	if truth.Size() != ds.Truth.Size() {
		t.Errorf("truth round trip: %d, want %d", truth.Size(), ds.Truth.Size())
	}
}

func TestRunUnknownDataset(t *testing.T) {
	if err := run("nope", 0.1, 1, t.TempDir()); err == nil {
		t.Error("unknown dataset should error")
	}
}
