// Command datagen materializes the synthetic benchmark datasets as CSV
// files for inspection or use with blastcli.
//
// Usage:
//
//	datagen -dataset ar1 -scale 0.1 -seed 42 -dir ./data
//
// writes ar1-E1.csv, ar1-E2.csv (clean-clean only) and ar1-truth.csv.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"blast/internal/datasets"
	"blast/internal/model"
)

func main() {
	name := flag.String("dataset", "ar1", "benchmark name: ar1 ar2 prd mov dbp census cora cddb paper-fig1")
	scale := flag.Float64("scale", 0.1, "fraction of paper-scale size")
	seed := flag.Uint64("seed", 42, "random seed")
	dir := flag.String("dir", ".", "output directory")
	flag.Parse()

	if err := run(*name, *scale, *seed, *dir); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(name string, scale float64, seed uint64, dir string) error {
	gen, err := datasets.ByName(name)
	if err != nil {
		return err
	}
	ds := gen(scale, seed)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	write := func(suffix string, fn func(f *os.File) error) error {
		path := filepath.Join(dir, fmt.Sprintf("%s-%s.csv", name, suffix))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Println("wrote", path)
		return f.Close()
	}

	if err := write("E1", func(f *os.File) error { return datasets.WriteCollection(f, ds.E1) }); err != nil {
		return err
	}
	if ds.Kind == model.CleanClean {
		if err := write("E2", func(f *os.File) error { return datasets.WriteCollection(f, ds.E2) }); err != nil {
			return err
		}
	}
	if err := write("truth", func(f *os.File) error { return datasets.WriteTruth(f, ds) }); err != nil {
		return err
	}
	fmt.Println(datasets.Describe(ds))
	return nil
}
