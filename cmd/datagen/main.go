// Command datagen materializes the synthetic benchmark datasets as CSV
// files for inspection or use with blastcli.
//
// Usage:
//
//	datagen -dataset ar1 -scale 0.1 -seed 42 -dir ./data
//
// writes ar1-E1.csv, ar1-E2.csv (clean-clean only) and ar1-truth.csv.
//
// With -profiles N the command switches to the streaming synthesizer:
//
//	datagen -dataset stream -profiles 5000000 -seed 42 -dir ./data
//
// writes <dataset>-E1.csv and <dataset>-truth.csv with N synthetic
// dirty profiles (~10% duplicate re-descriptions), generating each
// profile on the fly — memory stays bounded no matter how large N is,
// so millions of profiles are routine.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"blast/internal/datasets"
	"blast/internal/model"
)

// config is the parsed command line.
type config struct {
	name     string
	scale    float64
	seed     uint64
	dir      string
	profiles int
}

// parseFlags parses and validates the command line; invalid flags are
// usage errors (main exits 2) and never reach the generators.
func parseFlags(args []string, w io.Writer) (config, error) {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	fs.SetOutput(w)
	var cfg config
	fs.StringVar(&cfg.name, "dataset", "ar1", "benchmark name: ar1 ar2 prd mov dbp census cora cddb paper-fig1")
	fs.Float64Var(&cfg.scale, "scale", 0.1, "fraction of paper-scale size")
	fs.Uint64Var(&cfg.seed, "seed", 42, "random seed")
	fs.StringVar(&cfg.dir, "dir", ".", "output directory")
	fs.IntVar(&cfg.profiles, "profiles", 0, "stream this many synthetic profiles instead of a named benchmark")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	fail := func(format string, a ...any) (config, error) {
		err := fmt.Errorf(format, a...)
		fmt.Fprintf(w, "datagen: %v\n", err)
		fs.Usage()
		return cfg, err
	}
	if cfg.name == "" {
		return fail("-dataset must not be empty")
	}
	if cfg.dir == "" {
		return fail("-dir must not be empty")
	}
	if cfg.profiles < 0 {
		return fail("-profiles must not be negative, got %d", cfg.profiles)
	}
	// NaN fails the > 0 comparison, so one predicate rejects zero,
	// negative, NaN and infinite scales alike.
	if cfg.profiles == 0 && (!(cfg.scale > 0) || math.IsInf(cfg.scale, 0)) {
		return fail("-scale must be a positive finite number, got %v", cfg.scale)
	}
	return cfg, nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		os.Exit(2)
	}
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

// syncer is the optional durability hook of a WriteCloser (os.File).
type syncer interface{ Sync() error }

// writeAll streams fn's output into wc, syncs it when the writer
// supports syncing, and closes it. Every error is reported: a mid-write
// failure is joined with the close error instead of discarding it, and
// a clean write that fails to sync or close still fails the call — the
// caller must not report success until the bytes are on disk.
func writeAll(wc io.WriteCloser, fn func(io.Writer) error) error {
	err := fn(wc)
	if err == nil {
		if s, ok := wc.(syncer); ok {
			err = s.Sync()
		}
	}
	return errors.Join(err, wc.Close())
}

// writeCSV creates path, streams fn into it via writeAll, and announces
// the file on out only after the close succeeded — "wrote" is a
// durability claim, not an intention.
func writeCSV(path string, out io.Writer, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := writeAll(f, fn); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Fprintln(out, "wrote", path)
	return nil
}

func run(cfg config, out io.Writer) error {
	if err := os.MkdirAll(cfg.dir, 0o755); err != nil {
		return err
	}
	path := func(suffix string) string {
		return filepath.Join(cfg.dir, fmt.Sprintf("%s-%s.csv", cfg.name, suffix))
	}

	if cfg.profiles > 0 {
		s := datasets.NewStream(cfg.profiles, cfg.seed)
		if err := writeCSV(path("E1"), out, s.WriteE1); err != nil {
			return err
		}
		if err := writeCSV(path("truth"), out, s.WriteTruth); err != nil {
			return err
		}
		fmt.Fprintf(out, "stream: %d profiles\n", s.Len())
		return nil
	}

	gen, err := datasets.ByName(cfg.name)
	if err != nil {
		return err
	}
	ds := gen(cfg.scale, cfg.seed)
	if err := writeCSV(path("E1"), out, func(w io.Writer) error {
		return datasets.WriteCollection(w, ds.E1)
	}); err != nil {
		return err
	}
	if ds.Kind == model.CleanClean {
		if err := writeCSV(path("E2"), out, func(w io.Writer) error {
			return datasets.WriteCollection(w, ds.E2)
		}); err != nil {
			return err
		}
	}
	if err := writeCSV(path("truth"), out, func(w io.Writer) error {
		return datasets.WriteTruth(w, ds)
	}); err != nil {
		return err
	}
	fmt.Fprintln(out, datasets.Describe(ds))
	return nil
}
