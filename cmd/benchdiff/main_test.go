package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"blast/internal/experiments"
)

// writeJSON marshals rows into dir/name.
func writeJSON(t *testing.T, dir, name string, rows any) {
	t.Helper()
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func queryRow(ds string, p50 time.Duration) experiments.QueryRow {
	return experiments.QueryRow{Dataset: ds, P50: p50}
}

func incRow(ds string, speedup float64) experiments.IncrementalRow {
	return experiments.IncrementalRow{Dataset: ds, AmortizedSpeedup: speedup}
}

func serveRow(ds, mode string, shards, procs int, reads, scaling float64) experiments.ServeRow {
	return experiments.ServeRow{Dataset: ds, Mode: mode, Shards: shards, GOMAXPROCS: procs,
		ReadThroughput: reads, ScalingVs1: scaling, PairsMatch: true}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	base, cur := t.TempDir(), t.TempDir()
	writeJSON(t, base, "BENCH_query.json", []experiments.QueryRow{queryRow("ar1", 100)})
	writeJSON(t, cur, "BENCH_query.json", []experiments.QueryRow{queryRow("ar1", 120)}) // +20% < 25%
	writeJSON(t, base, "BENCH_incremental.json", []experiments.IncrementalRow{incRow("ar1", 30)})
	writeJSON(t, cur, "BENCH_incremental.json", []experiments.IncrementalRow{incRow("ar1", 25)}) // -17% > -25%
	writeJSON(t, base, "BENCH_serve.json", []experiments.ServeRow{
		serveRow("dbp", "server", 1, 8, 1e6, 1),
		serveRow("dbp", "server", 4, 8, 2.6e6, 2.6),
	})
	writeJSON(t, cur, "BENCH_serve.json", []experiments.ServeRow{
		serveRow("dbp", "server", 1, 8, 1e6, 1),
		serveRow("dbp", "server", 4, 8, 2.5e6, 2.5),
	})
	var out strings.Builder
	failures, err := run(&out, base, cur, 0.25, 2.0, 2.0, 0.6, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("failures = %d, output:\n%s", failures, out.String())
	}
}

func TestGateCatchesRegressions(t *testing.T) {
	base, cur := t.TempDir(), t.TempDir()
	writeJSON(t, base, "BENCH_query.json", []experiments.QueryRow{queryRow("ar1", 100), queryRow("dbp", 200)})
	writeJSON(t, cur, "BENCH_query.json", []experiments.QueryRow{queryRow("ar1", 200), queryRow("dbp", 200)}) // ar1 +100%
	writeJSON(t, base, "BENCH_incremental.json", []experiments.IncrementalRow{incRow("ar1", 30)})
	writeJSON(t, cur, "BENCH_incremental.json", []experiments.IncrementalRow{incRow("ar1", 10)}) // -67%
	writeJSON(t, base, "BENCH_serve.json", []experiments.ServeRow{serveRow("dbp", "server", 4, 8, 2e6, 2.5)})
	writeJSON(t, cur, "BENCH_serve.json", []experiments.ServeRow{serveRow("dbp", "server", 4, 8, 1e6, 1.2)}) // -50% and scaling < 2
	var out strings.Builder
	failures, err := run(&out, base, cur, 0.25, 2.0, 2.0, 0.6, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 4 {
		t.Fatalf("failures = %d, want 4 (query p50, incremental speedup, serve throughput, serve scaling)\n%s", failures, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Error("report lacks REGRESSED markers")
	}
}

func TestGateScalingFloorSkippedOnSmallHosts(t *testing.T) {
	base, cur := t.TempDir(), t.TempDir()
	// Scaling 0.8 on a 1-core host: parallelism-bound, must be skipped.
	writeJSON(t, base, "BENCH_serve.json", []experiments.ServeRow{serveRow("dbp", "server", 4, 1, 1e6, 0.8)})
	writeJSON(t, cur, "BENCH_serve.json", []experiments.ServeRow{serveRow("dbp", "server", 4, 1, 1e6, 0.8)})
	var out strings.Builder
	failures, err := run(&out, base, cur, 0.25, 2.0, 2.0, 0.6, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("failures = %d on a parallelism-bound host\n%s", failures, out.String())
	}
	if !strings.Contains(out.String(), "scaling floor skipped") {
		t.Errorf("missing skip note:\n%s", out.String())
	}
}

func TestGateMissingFiles(t *testing.T) {
	base, cur := t.TempDir(), t.TempDir()
	// No baselines at all: everything skips, gate passes.
	var out strings.Builder
	failures, err := run(&out, base, cur, 0.25, 2.0, 2.0, 0.6, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("failures = %d with no baselines", failures)
	}
	for _, want := range []string{"query: no baseline", "incremental: no baseline", "serve: no baseline"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q in:\n%s", want, out.String())
		}
	}
	// Baseline present but current missing: hard error.
	writeJSON(t, base, "BENCH_query.json", []experiments.QueryRow{queryRow("ar1", 100)})
	if _, err := run(&out, base, cur, 0.25, 2.0, 2.0, 0.6, 0.5, 4); err == nil {
		t.Error("missing current artifact must error")
	}
	// Dataset present in baseline but dropped from current: regression.
	writeJSON(t, cur, "BENCH_query.json", []experiments.QueryRow{queryRow("other", 100)})
	out.Reset()
	failures, err = run(&out, base, cur, 0.25, 2.0, 2.0, 0.6, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 {
		t.Fatalf("failures = %d, want 1 for dropped dataset\n%s", failures, out.String())
	}
}

func pruneRow(ds, pruning string, workers, procs int, ns time.Duration, speedup float64, equal bool) experiments.PruneRow {
	return experiments.PruneRow{Dataset: ds, Pruning: pruning, Workers: workers, GOMAXPROCS: procs,
		PruneTime: ns, SpeedupVs1: speedup, EqualSerial: equal}
}

// TestGateDegenerateBaseline: degenerate metrics in the BASELINE must
// produce named failures — a zero baseline p50 or speedup would
// otherwise make every current value pass the ratio vacuously. (JSON
// cannot carry NaN/Inf, so zero and negative values are the degenerate
// shapes a real artifact can take; the NaN/Inf classification is still
// covered by TestDegenerateNote.)
func TestGateDegenerateBaseline(t *testing.T) {
	base, cur := t.TempDir(), t.TempDir()
	writeJSON(t, base, "BENCH_query.json", []experiments.QueryRow{queryRow("ar1", 0)}) // zero p50
	writeJSON(t, cur, "BENCH_query.json", []experiments.QueryRow{queryRow("ar1", 100)})
	writeJSON(t, base, "BENCH_incremental.json", []experiments.IncrementalRow{incRow("ar1", 0)})
	writeJSON(t, cur, "BENCH_incremental.json", []experiments.IncrementalRow{incRow("ar1", 30)})
	writeJSON(t, base, "BENCH_serve.json", []experiments.ServeRow{serveRow("dbp", "server", 1, 8, -1, 1)})
	writeJSON(t, cur, "BENCH_serve.json", []experiments.ServeRow{serveRow("dbp", "server", 1, 8, 1e6, 1)})
	var out strings.Builder
	failures, err := run(&out, base, cur, 0.25, 2.0, 2.0, 0.6, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 3 {
		t.Fatalf("failures = %d, want 3 named degenerate-baseline failures\n%s", failures, out.String())
	}
	if got := strings.Count(out.String(), "degenerate baseline (non-positive)"); got != 3 {
		t.Errorf("want 3 named degenerate-baseline notes, got %d in:\n%s", got, out.String())
	}
}

// TestDegenerateNote pins the value classification, including the
// NaN/Inf shapes that can only arise from in-process arithmetic (a
// zero baseline turning a ratio Inf), not from a parsed artifact.
func TestDegenerateNote(t *testing.T) {
	cases := map[float64]string{
		math.NaN():   "NaN",
		math.Inf(1):  "Inf",
		math.Inf(-1): "Inf",
		0:            "non-positive",
		-3:           "non-positive",
		1:            "",
		42.5:         "",
	}
	for v, want := range cases {
		if got := degenerateNote(v); got != want {
			t.Errorf("degenerateNote(%v) = %q, want %q", v, got, want)
		}
	}
}

// TestGateDegenerateCurrent is the other direction: a broken CURRENT
// artifact (zero p50, negative speedup, zero throughput and scaling)
// must fail by name — a zero p50 "faster than baseline" or a zero
// throughput with a vacuous ratio must never slip through the gate.
func TestGateDegenerateCurrent(t *testing.T) {
	base, cur := t.TempDir(), t.TempDir()
	writeJSON(t, base, "BENCH_query.json", []experiments.QueryRow{queryRow("ar1", 100)})
	writeJSON(t, cur, "BENCH_query.json", []experiments.QueryRow{queryRow("ar1", 0)}) // "faster than baseline", but broken
	writeJSON(t, base, "BENCH_incremental.json", []experiments.IncrementalRow{incRow("ar1", 30)})
	writeJSON(t, cur, "BENCH_incremental.json", []experiments.IncrementalRow{incRow("ar1", -2)})
	writeJSON(t, base, "BENCH_serve.json", []experiments.ServeRow{serveRow("dbp", "server", 4, 8, 1e6, 2.5)})
	writeJSON(t, cur, "BENCH_serve.json", []experiments.ServeRow{serveRow("dbp", "server", 4, 8, 0, 0)})
	var out strings.Builder
	failures, err := run(&out, base, cur, 0.25, 2.0, 2.0, 0.6, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	// query p50, incremental speedup, serve throughput, serve scaling.
	if failures != 4 {
		t.Fatalf("failures = %d, want 4 named degenerate-current failures\n%s", failures, out.String())
	}
	if got := strings.Count(out.String(), "degenerate current (non-positive)"); got != 4 {
		t.Errorf("want 4 named degenerate-current notes, got %d in:\n%s", got, out.String())
	}
}

// TestGatePrune covers the prune artifact: per-cell time regression,
// the serial/parallel equality flag, and the speedup floor with its
// small-host skip.
func TestGatePrune(t *testing.T) {
	base, cur := t.TempDir(), t.TempDir()
	writeJSON(t, base, "BENCH_prune.json", []experiments.PruneRow{
		pruneRow("dbp", "blast-wnp", 1, 8, 100*time.Millisecond, 1, true),
		pruneRow("dbp", "blast-wnp", 4, 8, 40*time.Millisecond, 2.5, true),
	})
	writeJSON(t, cur, "BENCH_prune.json", []experiments.PruneRow{
		pruneRow("dbp", "blast-wnp", 1, 8, 110*time.Millisecond, 1, true), // +10% < 25%
		pruneRow("dbp", "blast-wnp", 4, 8, 44*time.Millisecond, 2.5, true),
	})
	var out strings.Builder
	failures, err := run(&out, base, cur, 0.25, 2.0, 2.0, 0.6, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("failures = %d within threshold\n%s", failures, out.String())
	}

	// Regressed time, a diverged parallel run, and a speedup below the
	// floor: three named failures.
	writeJSON(t, cur, "BENCH_prune.json", []experiments.PruneRow{
		pruneRow("dbp", "blast-wnp", 1, 8, 200*time.Millisecond, 1, true),     // +100%
		pruneRow("dbp", "blast-wnp", 4, 8, 150*time.Millisecond, 1.33, false), // diverged AND below floor
	})
	out.Reset()
	failures, err = run(&out, base, cur, 0.25, 2.0, 2.0, 0.6, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 4 {
		t.Fatalf("failures = %d, want 4 (two times, equality, speedup floor)\n%s", failures, out.String())
	}
	if !strings.Contains(out.String(), "diverged from the serial scheme") {
		t.Errorf("missing divergence note:\n%s", out.String())
	}

	// On a small host the speedup floor is skipped (parallelism-bound),
	// but the equality flag still gates.
	writeJSON(t, base, "BENCH_prune.json", []experiments.PruneRow{
		pruneRow("dbp", "blast-wnp", 4, 1, 100*time.Millisecond, 0.9, true),
	})
	writeJSON(t, cur, "BENCH_prune.json", []experiments.PruneRow{
		pruneRow("dbp", "blast-wnp", 4, 1, 100*time.Millisecond, 0.9, true),
	})
	out.Reset()
	failures, err = run(&out, base, cur, 0.25, 2.0, 2.0, 0.6, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("failures = %d on a parallelism-bound host\n%s", failures, out.String())
	}
	if !strings.Contains(out.String(), "speedup floor skipped") {
		t.Errorf("missing skip note:\n%s", out.String())
	}

	// A baseline cell missing from the current run is a regression.
	writeJSON(t, cur, "BENCH_prune.json", []experiments.PruneRow{
		pruneRow("dbp", "cep", 4, 1, 100*time.Millisecond, 0.9, true),
	})
	out.Reset()
	failures, err = run(&out, base, cur, 0.25, 2.0, 2.0, 0.6, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 {
		t.Fatalf("failures = %d, want 1 for dropped cell\n%s", failures, out.String())
	}
}

func recoverRow(ds, mode string, shards int, ns time.Duration, match bool) experiments.RecoverRow {
	return experiments.RecoverRow{Dataset: ds, Mode: mode, Shards: shards, GOMAXPROCS: 8,
		RecoveryTime: ns, Match: match}
}

// TestGateRecover covers the recover artifact: per-cell recovery-time
// regression, the recovered-state match flag (gated even with no
// baseline), and the dropped-cell check.
func TestGateRecover(t *testing.T) {
	base, cur := t.TempDir(), t.TempDir()
	writeJSON(t, base, "BENCH_recover.json", []experiments.RecoverRow{
		recoverRow("census", "snapshot", 2, 50*time.Millisecond, true),
		recoverRow("census", "walreplay", 2, 200*time.Millisecond, true),
	})
	writeJSON(t, cur, "BENCH_recover.json", []experiments.RecoverRow{
		recoverRow("census", "snapshot", 2, 55*time.Millisecond, true), // +10% < 25%
		recoverRow("census", "walreplay", 2, 210*time.Millisecond, true),
	})
	var out strings.Builder
	failures, err := run(&out, base, cur, 0.25, 2.0, 2.0, 0.6, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("failures = %d within threshold\n%s", failures, out.String())
	}

	// A regressed recovery time and a diverged recovered state: two
	// named failures.
	writeJSON(t, cur, "BENCH_recover.json", []experiments.RecoverRow{
		recoverRow("census", "snapshot", 2, 100*time.Millisecond, true),   // +100%
		recoverRow("census", "walreplay", 2, 210*time.Millisecond, false), // diverged
	})
	out.Reset()
	failures, err = run(&out, base, cur, 0.25, 2.0, 2.0, 0.6, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 2 {
		t.Fatalf("failures = %d, want 2 (recovery time, match)\n%s", failures, out.String())
	}
	if !strings.Contains(out.String(), "diverged from the pre-crash state") {
		t.Errorf("missing divergence note:\n%s", out.String())
	}

	// The match flag gates even when no baseline exists yet.
	os.Remove(filepath.Join(base, "BENCH_recover.json"))
	out.Reset()
	failures, err = run(&out, base, cur, 0.25, 2.0, 2.0, 0.6, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 {
		t.Fatalf("failures = %d, want 1 (match, baseline absent)\n%s", failures, out.String())
	}

	// A baseline cell missing from the current run is a regression.
	writeJSON(t, base, "BENCH_recover.json", []experiments.RecoverRow{
		recoverRow("census", "snapshot", 1, 50*time.Millisecond, true),
	})
	writeJSON(t, cur, "BENCH_recover.json", []experiments.RecoverRow{
		recoverRow("census", "snapshot", 2, 50*time.Millisecond, true),
	})
	out.Reset()
	failures, err = run(&out, base, cur, 0.25, 2.0, 2.0, 0.6, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 {
		t.Fatalf("failures = %d, want 1 for dropped cell\n%s", failures, out.String())
	}
}

func loadRow(ds string, clients int, inserts float64, p99 time.Duration, match bool) experiments.LoadRow {
	return experiments.LoadRow{Dataset: ds, Clients: clients, Shards: 2, GOMAXPROCS: 8,
		InsertThroughput: inserts, ReadP99: p99, Match: match}
}

// TestGateLoad covers the HTTP load artifact: per-cell insert
// throughput and read-p99 regressions, the HTTP-vs-in-process match
// flag (gated even with no baseline), and the dropped-cell check.
func TestGateLoad(t *testing.T) {
	base, cur := t.TempDir(), t.TempDir()
	writeJSON(t, base, "BENCH_load.json", []experiments.LoadRow{
		loadRow("census", 2, 5000, 2*time.Millisecond, true),
		loadRow("census", 4, 8000, 3*time.Millisecond, true),
	})
	writeJSON(t, cur, "BENCH_load.json", []experiments.LoadRow{
		loadRow("census", 2, 4500, 2200*time.Microsecond, true), // -10% and +10%, both < 25%
		loadRow("census", 4, 8100, 3*time.Millisecond, true),
	})
	var out strings.Builder
	failures, err := run(&out, base, cur, 0.25, 2.0, 2.0, 0.6, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("failures = %d within threshold\n%s", failures, out.String())
	}

	// Collapsed insert throughput, regressed p99, and a diverged
	// response body: three named failures.
	writeJSON(t, cur, "BENCH_load.json", []experiments.LoadRow{
		loadRow("census", 2, 1000, 2*time.Millisecond, true),  // -80%
		loadRow("census", 4, 8000, 9*time.Millisecond, false), // +200% AND diverged
	})
	out.Reset()
	failures, err = run(&out, base, cur, 0.25, 2.0, 2.0, 0.6, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 3 {
		t.Fatalf("failures = %d, want 3 (throughput, p99, match)\n%s", failures, out.String())
	}
	if !strings.Contains(out.String(), "diverged from in-process Server calls") {
		t.Errorf("missing divergence note:\n%s", out.String())
	}

	// The match flag gates even when no baseline exists yet.
	os.Remove(filepath.Join(base, "BENCH_load.json"))
	out.Reset()
	failures, err = run(&out, base, cur, 0.25, 2.0, 2.0, 0.6, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 {
		t.Fatalf("failures = %d, want 1 (match, baseline absent)\n%s", failures, out.String())
	}

	// A baseline cell missing from the current run is a regression.
	writeJSON(t, base, "BENCH_load.json", []experiments.LoadRow{
		loadRow("census", 8, 5000, 2*time.Millisecond, true),
	})
	writeJSON(t, cur, "BENCH_load.json", []experiments.LoadRow{
		loadRow("census", 2, 5000, 2*time.Millisecond, true),
	})
	out.Reset()
	failures, err = run(&out, base, cur, 0.25, 2.0, 2.0, 0.6, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 {
		t.Fatalf("failures = %d, want 1 for dropped cell\n%s", failures, out.String())
	}
}

func partitionRow(topo string, shards, procs int, inserts, memVs1 float64, match bool) experiments.PartitionRow {
	return experiments.PartitionRow{Dataset: "dbp", Topology: topo, Shards: shards, GOMAXPROCS: procs,
		InsertThroughput: inserts, MaxResidentBytes: 1 << 20, MemVs1: memVs1, PairsMatch: match}
}

// TestGatePartition covers the topology artifact: per-cell write
// throughput regression, the differential flag (gated even with no
// baseline), and the partitioned per-shard memory ceiling with its
// small-host skip.
func TestGatePartition(t *testing.T) {
	base, cur := t.TempDir(), t.TempDir()
	writeJSON(t, base, "BENCH_partition.json", []experiments.PartitionRow{
		partitionRow("replicated", 1, 8, 5000, 1, true),
		partitionRow("partitioned", 1, 8, 5000, 1, true),
		partitionRow("partitioned", 4, 8, 6000, 0.3, true),
	})
	writeJSON(t, cur, "BENCH_partition.json", []experiments.PartitionRow{
		partitionRow("replicated", 1, 8, 4600, 1, true), // -8% < 25%
		partitionRow("partitioned", 1, 8, 5100, 1, true),
		partitionRow("partitioned", 4, 8, 5900, 0.32, true), // ceiling 0.6 holds
	})
	var out strings.Builder
	failures, err := run(&out, base, cur, 0.25, 2.0, 2.0, 0.6, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("failures = %d within threshold\n%s", failures, out.String())
	}

	// Collapsed write throughput, a diverged topology, and flat per-shard
	// memory at 4 partitioned shards: three named failures.
	writeJSON(t, cur, "BENCH_partition.json", []experiments.PartitionRow{
		partitionRow("replicated", 1, 8, 1000, 1, true), // -80%
		partitionRow("partitioned", 1, 8, 5000, 1, true),
		partitionRow("partitioned", 4, 8, 6000, 0.95, false), // flat memory AND diverged
	})
	out.Reset()
	failures, err = run(&out, base, cur, 0.25, 2.0, 2.0, 0.6, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 3 {
		t.Fatalf("failures = %d, want 3 (throughput, match, memory ceiling)\n%s", failures, out.String())
	}
	if !strings.Contains(out.String(), "diverged from the cold rebuild") {
		t.Errorf("missing divergence note:\n%s", out.String())
	}

	// The match flag gates even when no baseline exists yet; the memory
	// ceiling is skipped on a small host (same runner-class rule as the
	// other structural floors).
	os.Remove(filepath.Join(base, "BENCH_partition.json"))
	writeJSON(t, cur, "BENCH_partition.json", []experiments.PartitionRow{
		partitionRow("partitioned", 1, 1, 5000, 1, true),
		partitionRow("partitioned", 4, 1, 6000, 0.95, false), // diverged; ceiling skipped on 1 CPU
	})
	out.Reset()
	failures, err = run(&out, base, cur, 0.25, 2.0, 2.0, 0.6, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 {
		t.Fatalf("failures = %d, want 1 (match only; baseline absent, small host)\n%s", failures, out.String())
	}
	if !strings.Contains(out.String(), "memory ceiling skipped") {
		t.Errorf("missing skip note:\n%s", out.String())
	}

	// A baseline cell missing from the current run is a regression.
	writeJSON(t, base, "BENCH_partition.json", []experiments.PartitionRow{
		partitionRow("replicated", 2, 8, 5000, 1, true),
	})
	writeJSON(t, cur, "BENCH_partition.json", []experiments.PartitionRow{
		partitionRow("replicated", 1, 8, 5000, 1, true),
	})
	out.Reset()
	failures, err = run(&out, base, cur, 0.25, 2.0, 2.0, 0.6, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 {
		t.Fatalf("failures = %d, want 1 for dropped cell\n%s", failures, out.String())
	}
}

func TestGateMalformedJSON(t *testing.T) {
	base, cur := t.TempDir(), t.TempDir()
	if err := os.WriteFile(filepath.Join(base, "BENCH_query.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if _, err := run(&out, base, cur, 0.25, 2.0, 2.0, 0.6, 0.5, 4); err == nil {
		t.Error("malformed baseline must error")
	}
}

func spillRow(profiles int, heapVsResident, hitRate float64, spilled, match bool) experiments.SpillRow {
	return experiments.SpillRow{Profiles: profiles, GOMAXPROCS: 8, MemoryBudget: 16384,
		Spilled: spilled, SpillBytes: 1 << 20, HeapVsResident: heapVsResident,
		CacheHitRate: hitRate, PairsMatch: match}
}

func TestGateSpill(t *testing.T) {
	base, cur := t.TempDir(), t.TempDir()
	writeJSON(t, base, "BENCH_spill.json", []experiments.SpillRow{
		spillRow(750, 1.1, 0.99, true, true),
		spillRow(3000, 0.3, 0.99, true, true),
	})
	writeJSON(t, cur, "BENCH_spill.json", []experiments.SpillRow{
		spillRow(750, 1.2, 0.95, true, true),   // hit rate -4% < 25%; heap not gated (not largest)
		spillRow(3000, 0.35, 0.99, true, true), // ceiling 0.5 holds at the largest point
	})
	var out strings.Builder
	failures, err := run(&out, base, cur, 0.25, 2.0, 2.0, 0.6, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("failures = %d within threshold\n%s", failures, out.String())
	}

	// Collapsed hit rate, a never-spilled row, a diverged build and a
	// flat serving heap at the largest point: four named failures.
	writeJSON(t, cur, "BENCH_spill.json", []experiments.SpillRow{
		spillRow(750, 1.2, 0.10, true, false),   // hit rate -90% AND diverged
		spillRow(3000, 0.95, 0.99, false, true), // never spilled AND flat heap
	})
	out.Reset()
	failures, err = run(&out, base, cur, 0.25, 2.0, 2.0, 0.6, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 4 {
		t.Fatalf("failures = %d, want 4 (hit rate, match, spilled, heap ceiling)\n%s", failures, out.String())
	}
	if !strings.Contains(out.String(), "never exceeded the memory budget") {
		t.Errorf("missing spilled note:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "diverged from the resident build") {
		t.Errorf("missing divergence note:\n%s", out.String())
	}

	// The flags and the heap ceiling gate even when no baseline exists.
	if err := os.Remove(filepath.Join(base, "BENCH_spill.json")); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	failures, err = run(&out, base, cur, 0.25, 2.0, 2.0, 0.6, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 3 {
		t.Fatalf("failures = %d, want 3 without a baseline (match, spilled, heap ceiling)\n%s", failures, out.String())
	}

	// A baseline corpus point missing from the current run is a
	// regression.
	writeJSON(t, base, "BENCH_spill.json", []experiments.SpillRow{
		spillRow(6000, 0.3, 0.99, true, true),
	})
	writeJSON(t, cur, "BENCH_spill.json", []experiments.SpillRow{
		spillRow(3000, 0.3, 0.99, true, true),
	})
	out.Reset()
	failures, err = run(&out, base, cur, 0.25, 2.0, 2.0, 0.6, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 {
		t.Fatalf("failures = %d, want 1 for dropped corpus point\n%s", failures, out.String())
	}
}
