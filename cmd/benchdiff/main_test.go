package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"blast/internal/experiments"
)

// writeJSON marshals rows into dir/name.
func writeJSON(t *testing.T, dir, name string, rows any) {
	t.Helper()
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func queryRow(ds string, p50 time.Duration) experiments.QueryRow {
	return experiments.QueryRow{Dataset: ds, P50: p50}
}

func incRow(ds string, speedup float64) experiments.IncrementalRow {
	return experiments.IncrementalRow{Dataset: ds, AmortizedSpeedup: speedup}
}

func serveRow(ds, mode string, shards, procs int, reads, scaling float64) experiments.ServeRow {
	return experiments.ServeRow{Dataset: ds, Mode: mode, Shards: shards, GOMAXPROCS: procs,
		ReadThroughput: reads, ScalingVs1: scaling, PairsMatch: true}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	base, cur := t.TempDir(), t.TempDir()
	writeJSON(t, base, "BENCH_query.json", []experiments.QueryRow{queryRow("ar1", 100)})
	writeJSON(t, cur, "BENCH_query.json", []experiments.QueryRow{queryRow("ar1", 120)}) // +20% < 25%
	writeJSON(t, base, "BENCH_incremental.json", []experiments.IncrementalRow{incRow("ar1", 30)})
	writeJSON(t, cur, "BENCH_incremental.json", []experiments.IncrementalRow{incRow("ar1", 25)}) // -17% > -25%
	writeJSON(t, base, "BENCH_serve.json", []experiments.ServeRow{
		serveRow("dbp", "server", 1, 8, 1e6, 1),
		serveRow("dbp", "server", 4, 8, 2.6e6, 2.6),
	})
	writeJSON(t, cur, "BENCH_serve.json", []experiments.ServeRow{
		serveRow("dbp", "server", 1, 8, 1e6, 1),
		serveRow("dbp", "server", 4, 8, 2.5e6, 2.5),
	})
	var out strings.Builder
	failures, err := run(&out, base, cur, 0.25, 2.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("failures = %d, output:\n%s", failures, out.String())
	}
}

func TestGateCatchesRegressions(t *testing.T) {
	base, cur := t.TempDir(), t.TempDir()
	writeJSON(t, base, "BENCH_query.json", []experiments.QueryRow{queryRow("ar1", 100), queryRow("dbp", 200)})
	writeJSON(t, cur, "BENCH_query.json", []experiments.QueryRow{queryRow("ar1", 200), queryRow("dbp", 200)}) // ar1 +100%
	writeJSON(t, base, "BENCH_incremental.json", []experiments.IncrementalRow{incRow("ar1", 30)})
	writeJSON(t, cur, "BENCH_incremental.json", []experiments.IncrementalRow{incRow("ar1", 10)}) // -67%
	writeJSON(t, base, "BENCH_serve.json", []experiments.ServeRow{serveRow("dbp", "server", 4, 8, 2e6, 2.5)})
	writeJSON(t, cur, "BENCH_serve.json", []experiments.ServeRow{serveRow("dbp", "server", 4, 8, 1e6, 1.2)}) // -50% and scaling < 2
	var out strings.Builder
	failures, err := run(&out, base, cur, 0.25, 2.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 4 {
		t.Fatalf("failures = %d, want 4 (query p50, incremental speedup, serve throughput, serve scaling)\n%s", failures, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Error("report lacks REGRESSED markers")
	}
}

func TestGateScalingFloorSkippedOnSmallHosts(t *testing.T) {
	base, cur := t.TempDir(), t.TempDir()
	// Scaling 0.8 on a 1-core host: parallelism-bound, must be skipped.
	writeJSON(t, base, "BENCH_serve.json", []experiments.ServeRow{serveRow("dbp", "server", 4, 1, 1e6, 0.8)})
	writeJSON(t, cur, "BENCH_serve.json", []experiments.ServeRow{serveRow("dbp", "server", 4, 1, 1e6, 0.8)})
	var out strings.Builder
	failures, err := run(&out, base, cur, 0.25, 2.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("failures = %d on a parallelism-bound host\n%s", failures, out.String())
	}
	if !strings.Contains(out.String(), "scaling floor skipped") {
		t.Errorf("missing skip note:\n%s", out.String())
	}
}

func TestGateMissingFiles(t *testing.T) {
	base, cur := t.TempDir(), t.TempDir()
	// No baselines at all: everything skips, gate passes.
	var out strings.Builder
	failures, err := run(&out, base, cur, 0.25, 2.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("failures = %d with no baselines", failures)
	}
	for _, want := range []string{"query: no baseline", "incremental: no baseline", "serve: no baseline"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q in:\n%s", want, out.String())
		}
	}
	// Baseline present but current missing: hard error.
	writeJSON(t, base, "BENCH_query.json", []experiments.QueryRow{queryRow("ar1", 100)})
	if _, err := run(&out, base, cur, 0.25, 2.0, 4); err == nil {
		t.Error("missing current artifact must error")
	}
	// Dataset present in baseline but dropped from current: regression.
	writeJSON(t, cur, "BENCH_query.json", []experiments.QueryRow{queryRow("other", 100)})
	out.Reset()
	failures, err = run(&out, base, cur, 0.25, 2.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 {
		t.Fatalf("failures = %d, want 1 for dropped dataset\n%s", failures, out.String())
	}
}

func TestGateMalformedJSON(t *testing.T) {
	base, cur := t.TempDir(), t.TempDir()
	if err := os.WriteFile(filepath.Join(base, "BENCH_query.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if _, err := run(&out, base, cur, 0.25, 2.0, 4); err == nil {
		t.Error("malformed baseline must error")
	}
}
