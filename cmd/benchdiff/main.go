// Command benchdiff is the CI benchmark-regression gate: it compares
// the benchmark artifacts of the current run (BENCH_query.json,
// BENCH_incremental.json, BENCH_serve.json, BENCH_prune.json,
// BENCH_recover.json, BENCH_load.json) against committed baselines and
// fails when a gated metric regresses beyond the threshold.
//
// Gated metrics:
//
//   - query: per-dataset Candidates p50 latency must not grow more than
//     threshold (default 25%) over the baseline.
//   - incremental: per-dataset amortized insert speedup over a cold
//     rebuild must not shrink more than threshold.
//   - serve: per-configuration read throughput must not shrink more
//     than threshold, and the read-throughput scaling of the largest
//     shard count over one shard must reach -min-serve-scaling
//     (default 2.0). The scaling floor is only enforced when the host
//     recorded in the artifact has at least -min-scaling-procs CPUs
//     (default 4): scaling is bounded by available parallelism, so
//     enforcing 2x on a 1-core runner would gate on the hardware, not
//     the code.
//   - prune: per-cell (dataset/pruning/workers) prune time must not
//     grow more than threshold; every current row must be byte-equal to
//     its serial run (EqualSerial); and the best speedup at the largest
//     worker count must reach -min-prune-speedup (default 2.0), again
//     only on hosts with at least -min-scaling-procs CPUs.
//   - recover: per-cell (dataset/mode/shards) crash-recovery time must
//     not grow more than threshold, and every current row must report
//     Match=true — a recovered server that diverges from the pre-crash
//     state is a named failure regardless of timing.
//   - load: per-cell (dataset/clients/shards) HTTP insert throughput
//     must not shrink and read p99 must not grow more than threshold,
//     and every current row must report Match=true — an HTTP front end
//     whose response bytes diverge from the in-process Server calls it
//     fronts is a named failure regardless of timing.
//   - spill: per-corpus-point (profiles) page-cache hit rate must not
//     shrink more than threshold; every current row must report
//     Spilled=true and PairsMatch=true — a "spill" row that never left
//     RAM, or a spilled build whose retained pairs diverge from the
//     resident build, is a named failure regardless of the numbers; and
//     the largest corpus point's serving heap must come in at or under
//     -max-spill-heap (default 0.5) of its resident twin — a spilled
//     build whose heap tracks the resident one is not actually serving
//     beyond RAM.
//   - partition: per-cell (dataset/topology/shards) write throughput
//     must not shrink more than threshold; every current row must
//     report PairsMatch=true; and the partitioned topology's per-shard
//     resident memory at the largest shard count must come in at or
//     under -max-partition-mem (default 0.6) of its 1-shard row —
//     partitioned shards own disjoint row slices, so flat per-shard
//     memory means the partitioning is not actually partitioning. The
//     memory ceiling is only enforced when the artifact's host has at
//     least -min-scaling-procs CPUs, keeping the gate on the same
//     runner class as the other structural floors.
//
// Degenerate artifact values — zero, negative, NaN or Inf where a
// latency, throughput, speedup or scaling factor belongs — are a named
// failure in either direction (baseline or current): a broken artifact
// must fail the gate loudly, never produce an Inf/NaN ratio that
// silently passes it.
//
// A missing baseline file skips its checks with a note (so a newly
// introduced artifact does not fail the gate before its baseline is
// committed); a missing current file fails. Baselines live in
// bench/baselines/ and should be regenerated on the same runner class
// that executes CI whenever a deliberate performance change lands:
//
//	go run ./cmd/blastbench -exp query -scale 0.5 -json > bench/baselines/BENCH_query.json
//	go run ./cmd/blastbench -exp incremental -scale 0.5 -json > bench/baselines/BENCH_incremental.json
//	go run ./cmd/blastbench -exp serve -scale 0.5 -json > bench/baselines/BENCH_serve.json
//	go run ./cmd/blastbench -exp prune -scale 0.5 -json > bench/baselines/BENCH_prune.json
//	go run ./cmd/blastbench -exp recover -scale 0.5 -json > bench/baselines/BENCH_recover.json
//	go run ./cmd/blastbench -exp load -scale 0.5 -json > bench/baselines/BENCH_load.json
//	go run ./cmd/blastbench -exp partition -scale 0.5 -json > bench/baselines/BENCH_partition.json
//	go run ./cmd/blastbench -exp spill -scale 0.5 -json > bench/baselines/BENCH_spill.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"blast/internal/experiments"
)

func main() {
	baseDir := flag.String("baseline", "bench/baselines", "directory of committed baseline artifacts")
	curDir := flag.String("current", ".", "directory of freshly generated artifacts")
	threshold := flag.Float64("threshold", 0.25, "allowed relative regression per metric")
	minScaling := flag.Float64("min-serve-scaling", 2.0, "required read-throughput scaling, largest shard count vs 1")
	minPrune := flag.Float64("min-prune-speedup", 2.0, "required pruning speedup at the largest worker count vs serial")
	minProcs := flag.Int("min-scaling-procs", 4, "minimum GOMAXPROCS recorded in the artifact for the scaling and speedup floors to be enforced")
	maxPartMem := flag.Float64("max-partition-mem", 0.6, "ceiling on partitioned per-shard memory at the largest shard count, as a fraction of the 1-shard row")
	maxSpillHeap := flag.Float64("max-spill-heap", 0.5, "ceiling on the spilled build's serving heap at the largest corpus point, as a fraction of the resident twin")
	flag.Parse()

	failures, err := run(os.Stdout, *baseDir, *curDir, *threshold, *minScaling, *minPrune, *maxPartMem, *maxSpillHeap, *minProcs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d metric(s) regressed beyond the gate\n", failures)
		os.Exit(1)
	}
}

// degenerateNote classifies a metric value no gate can reason about:
// latencies, throughputs, speedups and scaling factors are all strictly
// positive finite numbers in a healthy artifact.
func degenerateNote(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 0):
		return "Inf"
	case v <= 0:
		return "non-positive"
	}
	return ""
}

// gated builds the check for one metric pair. lowerIsBetter selects the
// direction: latencies gate growth, speedups and throughputs gate
// shrinkage. Degenerate values on either side are a named failure — a
// zero or NaN baseline would otherwise make the ratio vacuous and pass
// any current value through the gate.
func gated(metric string, base, cur, threshold float64, lowerIsBetter bool) check {
	c := check{metric: metric, baseline: base, current: cur}
	if bad := degenerateNote(base); bad != "" {
		c.note = "degenerate baseline (" + bad + ")"
		return c
	}
	if bad := degenerateNote(cur); bad != "" {
		c.note = "degenerate current (" + bad + ")"
		return c
	}
	if lowerIsBetter {
		c.ok = cur <= base*(1+threshold)
	} else {
		c.ok = cur >= base*(1-threshold)
	}
	return c
}

// floorCheck builds the check for a metric judged against an absolute
// floor over the current run alone (serve's shard scaling, prune's
// worker speedup) rather than against a baseline. Degenerate values
// fail by name, like gated.
func floorCheck(metric string, floor, cur float64) check {
	c := check{metric: metric, baseline: floor, current: cur}
	if bad := degenerateNote(cur); bad != "" {
		c.note = "degenerate current (" + bad + ")"
		return c
	}
	c.ok = cur >= floor
	c.note = "floor, not baseline"
	return c
}

// ceilingCheck is floorCheck's mirror for metrics that must come in AT
// OR UNDER an absolute bound over the current run alone (the
// partitioned per-shard memory fraction).
func ceilingCheck(metric string, ceiling, cur float64) check {
	c := check{metric: metric, baseline: ceiling, current: cur}
	if bad := degenerateNote(cur); bad != "" {
		c.note = "degenerate current (" + bad + ")"
		return c
	}
	c.ok = cur <= ceiling
	c.note = "ceiling, not baseline"
	return c
}

// loadJSON decodes one artifact into rows; (nil, nil) when the file
// does not exist.
func loadJSON[T any](dir, name string) ([]T, error) {
	data, err := os.ReadFile(filepath.Join(dir, name))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var rows []T
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return rows, nil
}

// check is one gated comparison, rendered as a report line.
type check struct {
	metric   string
	baseline float64
	current  float64
	ok       bool
	note     string
}

func run(w io.Writer, baseDir, curDir string, threshold, minScaling, minPrune, maxPartMem, maxSpillHeap float64, minProcs int) (failures int, err error) {
	var checks []check
	add := func(c check) {
		checks = append(checks, c)
		if !c.ok {
			failures++
		}
	}

	// query: p50 must not grow beyond (1+threshold)x.
	baseQ, err := loadJSON[experiments.QueryRow](baseDir, "BENCH_query.json")
	if err != nil {
		return 0, err
	}
	if baseQ == nil {
		fmt.Fprintln(w, "query: no baseline, skipped")
	} else {
		curQ, err := loadJSON[experiments.QueryRow](curDir, "BENCH_query.json")
		if err != nil {
			return 0, err
		}
		if curQ == nil {
			return 0, fmt.Errorf("missing current BENCH_query.json (baseline exists)")
		}
		cur := make(map[string]experiments.QueryRow, len(curQ))
		for _, r := range curQ {
			cur[r.Dataset] = r
		}
		for _, b := range baseQ {
			c, found := cur[b.Dataset]
			if !found {
				add(check{metric: "query/" + b.Dataset + " p50", baseline: float64(b.P50), ok: false, note: "dataset missing from current run"})
				continue
			}
			add(gated("query/"+b.Dataset+" p50 ns", float64(b.P50), float64(c.P50), threshold, true))
		}
	}

	// incremental: amortized speedup must not shrink beyond (1-threshold)x.
	baseI, err := loadJSON[experiments.IncrementalRow](baseDir, "BENCH_incremental.json")
	if err != nil {
		return 0, err
	}
	if baseI == nil {
		fmt.Fprintln(w, "incremental: no baseline, skipped")
	} else {
		curI, err := loadJSON[experiments.IncrementalRow](curDir, "BENCH_incremental.json")
		if err != nil {
			return 0, err
		}
		if curI == nil {
			return 0, fmt.Errorf("missing current BENCH_incremental.json (baseline exists)")
		}
		cur := make(map[string]experiments.IncrementalRow, len(curI))
		for _, r := range curI {
			cur[r.Dataset] = r
		}
		for _, b := range baseI {
			c, found := cur[b.Dataset]
			if !found {
				add(check{metric: "incremental/" + b.Dataset + " speedup", baseline: b.AmortizedSpeedup, ok: false, note: "dataset missing from current run"})
				continue
			}
			add(gated("incremental/"+b.Dataset+" speedup", b.AmortizedSpeedup, c.AmortizedSpeedup, threshold, false))
		}
	}

	// serve: per-configuration read throughput vs baseline, plus the
	// scaling floor over the current run alone.
	baseS, err := loadJSON[experiments.ServeRow](baseDir, "BENCH_serve.json")
	if err != nil {
		return 0, err
	}
	curS, err := loadJSON[experiments.ServeRow](curDir, "BENCH_serve.json")
	if err != nil {
		return 0, err
	}
	if baseS == nil {
		fmt.Fprintln(w, "serve: no baseline, throughput comparison skipped")
	} else {
		if curS == nil {
			return 0, fmt.Errorf("missing current BENCH_serve.json (baseline exists)")
		}
		key := func(r experiments.ServeRow) string {
			return fmt.Sprintf("%s/%s/shards=%d", r.Dataset, r.Mode, r.Shards)
		}
		cur := make(map[string]experiments.ServeRow, len(curS))
		for _, r := range curS {
			cur[key(r)] = r
		}
		for _, b := range baseS {
			c, found := cur[key(b)]
			if !found {
				add(check{metric: "serve/" + key(b) + " reads/s", baseline: b.ReadThroughput, ok: false, note: "configuration missing from current run"})
				continue
			}
			add(gated("serve/"+key(b)+" reads/s", b.ReadThroughput, c.ReadThroughput, threshold, false))
		}
	}
	if curS != nil {
		// The scaling floor judges only the current run: find the
		// largest-shard-count server row.
		var top *experiments.ServeRow
		for i := range curS {
			r := &curS[i]
			if r.Mode == "server" && (top == nil || r.Shards > top.Shards) {
				top = r
			}
		}
		switch {
		case top == nil || top.Shards <= 1:
			fmt.Fprintln(w, "serve: no multi-shard row, scaling floor skipped")
		case top.GOMAXPROCS < minProcs:
			fmt.Fprintf(w, "serve: scaling floor skipped (GOMAXPROCS %d < %d; scaling is parallelism-bound)\n", top.GOMAXPROCS, minProcs)
		default:
			add(floorCheck(fmt.Sprintf("serve/%s scaling %d vs 1 shard", top.Dataset, top.Shards),
				minScaling, top.ScalingVs1))
		}
	}

	// prune: per-cell prune time vs baseline, the serial/parallel
	// byte-equality flag, and the speedup floor over the current run
	// alone (like the serve scaling floor, enforced only on hosts with
	// enough CPUs to make the floor about the code).
	baseP, err := loadJSON[experiments.PruneRow](baseDir, "BENCH_prune.json")
	if err != nil {
		return 0, err
	}
	curP, err := loadJSON[experiments.PruneRow](curDir, "BENCH_prune.json")
	if err != nil {
		return 0, err
	}
	if baseP == nil {
		fmt.Fprintln(w, "prune: no baseline, time comparison skipped")
	} else {
		if curP == nil {
			return 0, fmt.Errorf("missing current BENCH_prune.json (baseline exists)")
		}
		key := func(r experiments.PruneRow) string {
			return fmt.Sprintf("%s/%s/workers=%d", r.Dataset, r.Pruning, r.Workers)
		}
		cur := make(map[string]experiments.PruneRow, len(curP))
		for _, r := range curP {
			cur[key(r)] = r
		}
		for _, b := range baseP {
			c, found := cur[key(b)]
			if !found {
				add(check{metric: "prune/" + key(b) + " ns", baseline: float64(b.PruneTime), ok: false, note: "configuration missing from current run"})
				continue
			}
			add(gated("prune/"+key(b)+" ns", float64(b.PruneTime), float64(c.PruneTime), threshold, true))
		}
	}
	if curP != nil {
		topWorkers, best := 0, math.Inf(-1)
		var bestRow experiments.PruneRow
		for _, r := range curP {
			if !r.EqualSerial {
				add(check{
					metric:  fmt.Sprintf("prune/%s/%s/workers=%d equal-serial", r.Dataset, r.Pruning, r.Workers),
					ok:      false,
					note:    "parallel output diverged from the serial scheme",
					current: r.SpeedupVs1,
				})
			}
			if r.Workers > topWorkers {
				topWorkers, best = r.Workers, math.Inf(-1)
			}
			if r.Workers == topWorkers && r.SpeedupVs1 > best {
				best, bestRow = r.SpeedupVs1, r
			}
		}
		switch {
		case topWorkers <= 1:
			fmt.Fprintln(w, "prune: no multi-worker row, speedup floor skipped")
		case bestRow.GOMAXPROCS < minProcs:
			fmt.Fprintf(w, "prune: speedup floor skipped (GOMAXPROCS %d < %d; speedup is parallelism-bound)\n", bestRow.GOMAXPROCS, minProcs)
		default:
			add(floorCheck(fmt.Sprintf("prune/%s best speedup at %d workers", bestRow.Dataset, topWorkers),
				minPrune, best))
		}
	}

	// recover: per-cell crash-recovery time vs baseline, plus the
	// Match flag over the current run alone — a recovered server that
	// diverged from the pre-crash state fails by name even when no
	// baseline exists yet.
	baseR, err := loadJSON[experiments.RecoverRow](baseDir, "BENCH_recover.json")
	if err != nil {
		return 0, err
	}
	curR, err := loadJSON[experiments.RecoverRow](curDir, "BENCH_recover.json")
	if err != nil {
		return 0, err
	}
	if baseR == nil {
		fmt.Fprintln(w, "recover: no baseline, time comparison skipped")
	} else {
		if curR == nil {
			return 0, fmt.Errorf("missing current BENCH_recover.json (baseline exists)")
		}
		key := func(r experiments.RecoverRow) string {
			return fmt.Sprintf("%s/%s/shards=%d", r.Dataset, r.Mode, r.Shards)
		}
		cur := make(map[string]experiments.RecoverRow, len(curR))
		for _, r := range curR {
			cur[key(r)] = r
		}
		for _, b := range baseR {
			c, found := cur[key(b)]
			if !found {
				add(check{metric: "recover/" + key(b) + " ns", baseline: float64(b.RecoveryTime), ok: false, note: "configuration missing from current run"})
				continue
			}
			add(gated("recover/"+key(b)+" ns", float64(b.RecoveryTime), float64(c.RecoveryTime), threshold, true))
		}
	}
	for _, r := range curR {
		if !r.Match {
			add(check{
				metric: fmt.Sprintf("recover/%s/%s/shards=%d match", r.Dataset, r.Mode, r.Shards),
				ok:     false,
				note:   "recovered server diverged from the pre-crash state",
			})
		}
	}

	// load: per-cell HTTP insert throughput and read p99 vs baseline,
	// plus the HTTP-vs-in-process differential over the current run
	// alone — a front end whose responses diverge from the Server it
	// fronts fails by name even when no baseline exists yet.
	baseL, err := loadJSON[experiments.LoadRow](baseDir, "BENCH_load.json")
	if err != nil {
		return 0, err
	}
	curL, err := loadJSON[experiments.LoadRow](curDir, "BENCH_load.json")
	if err != nil {
		return 0, err
	}
	if baseL == nil {
		fmt.Fprintln(w, "load: no baseline, throughput comparison skipped")
	} else {
		if curL == nil {
			return 0, fmt.Errorf("missing current BENCH_load.json (baseline exists)")
		}
		key := func(r experiments.LoadRow) string {
			return fmt.Sprintf("%s/clients=%d/shards=%d", r.Dataset, r.Clients, r.Shards)
		}
		cur := make(map[string]experiments.LoadRow, len(curL))
		for _, r := range curL {
			cur[key(r)] = r
		}
		for _, b := range baseL {
			c, found := cur[key(b)]
			if !found {
				add(check{metric: "load/" + key(b) + " inserts/s", baseline: b.InsertThroughput, ok: false, note: "configuration missing from current run"})
				continue
			}
			add(gated("load/"+key(b)+" inserts/s", b.InsertThroughput, c.InsertThroughput, threshold, false))
			add(gated("load/"+key(b)+" read p99 ns", float64(b.ReadP99), float64(c.ReadP99), threshold, true))
		}
	}
	for _, r := range curL {
		if !r.Match {
			add(check{
				metric: fmt.Sprintf("load/%s/clients=%d/shards=%d match", r.Dataset, r.Clients, r.Shards),
				ok:     false,
				note:   "HTTP responses diverged from in-process Server calls",
			})
		}
	}

	// partition: per-cell write throughput vs baseline, the differential
	// flag, and the partitioned per-shard memory ceiling over the
	// current run alone — a partitioned topology whose per-shard memory
	// does not shrink with the shard count is replicating, not
	// partitioning, and fails by name even when no baseline exists yet.
	basePT, err := loadJSON[experiments.PartitionRow](baseDir, "BENCH_partition.json")
	if err != nil {
		return 0, err
	}
	curPT, err := loadJSON[experiments.PartitionRow](curDir, "BENCH_partition.json")
	if err != nil {
		return 0, err
	}
	if basePT == nil {
		fmt.Fprintln(w, "partition: no baseline, throughput comparison skipped")
	} else {
		if curPT == nil {
			return 0, fmt.Errorf("missing current BENCH_partition.json (baseline exists)")
		}
		key := func(r experiments.PartitionRow) string {
			return fmt.Sprintf("%s/%s/shards=%d", r.Dataset, r.Topology, r.Shards)
		}
		cur := make(map[string]experiments.PartitionRow, len(curPT))
		for _, r := range curPT {
			cur[key(r)] = r
		}
		for _, b := range basePT {
			c, found := cur[key(b)]
			if !found {
				add(check{metric: "partition/" + key(b) + " inserts/s", baseline: b.InsertThroughput, ok: false, note: "configuration missing from current run"})
				continue
			}
			add(gated("partition/"+key(b)+" inserts/s", b.InsertThroughput, c.InsertThroughput, threshold, false))
		}
	}
	if curPT != nil {
		var top *experiments.PartitionRow
		for i := range curPT {
			r := &curPT[i]
			if !r.PairsMatch {
				add(check{
					metric: fmt.Sprintf("partition/%s/%s/shards=%d match", r.Dataset, r.Topology, r.Shards),
					ok:     false,
					note:   "server diverged from the cold rebuild",
				})
			}
			if r.Topology == "partitioned" && (top == nil || r.Shards > top.Shards) {
				top = r
			}
		}
		switch {
		case top == nil || top.Shards <= 1:
			fmt.Fprintln(w, "partition: no multi-shard partitioned row, memory ceiling skipped")
		case top.GOMAXPROCS < minProcs:
			fmt.Fprintf(w, "partition: memory ceiling skipped (GOMAXPROCS %d < %d; gated on the CI runner class)\n", top.GOMAXPROCS, minProcs)
		default:
			add(ceilingCheck(fmt.Sprintf("partition/%s per-shard mem %d vs 1 shard", top.Dataset, top.Shards),
				maxPartMem, top.MemVs1))
		}
	}

	// spill: per-corpus-point cache hit rate vs baseline, the Spilled and
	// PairsMatch flags, and the serving-heap ceiling at the largest
	// corpus point over the current run alone — a spilled build whose
	// heap tracks its resident twin is not serving beyond RAM and fails
	// by name even when no baseline exists yet.
	baseSP, err := loadJSON[experiments.SpillRow](baseDir, "BENCH_spill.json")
	if err != nil {
		return 0, err
	}
	curSP, err := loadJSON[experiments.SpillRow](curDir, "BENCH_spill.json")
	if err != nil {
		return 0, err
	}
	if baseSP == nil {
		fmt.Fprintln(w, "spill: no baseline, hit-rate comparison skipped")
	} else {
		if curSP == nil {
			return 0, fmt.Errorf("missing current BENCH_spill.json (baseline exists)")
		}
		cur := make(map[int]experiments.SpillRow, len(curSP))
		for _, r := range curSP {
			cur[r.Profiles] = r
		}
		for _, b := range baseSP {
			c, found := cur[b.Profiles]
			if !found {
				add(check{metric: fmt.Sprintf("spill/profiles=%d hit rate", b.Profiles), baseline: b.CacheHitRate, ok: false, note: "corpus point missing from current run"})
				continue
			}
			add(gated(fmt.Sprintf("spill/profiles=%d hit rate", b.Profiles), b.CacheHitRate, c.CacheHitRate, threshold, false))
		}
	}
	if curSP != nil {
		var top *experiments.SpillRow
		for i := range curSP {
			r := &curSP[i]
			if !r.Spilled {
				add(check{
					metric: fmt.Sprintf("spill/profiles=%d spilled", r.Profiles),
					ok:     false,
					note:   "corpus point never exceeded the memory budget",
				})
			}
			if !r.PairsMatch {
				add(check{
					metric: fmt.Sprintf("spill/profiles=%d match", r.Profiles),
					ok:     false,
					note:   "spilled build diverged from the resident build",
				})
			}
			if top == nil || r.Profiles > top.Profiles {
				top = r
			}
		}
		if top == nil {
			fmt.Fprintln(w, "spill: no rows, heap ceiling skipped")
		} else {
			add(ceilingCheck(fmt.Sprintf("spill/profiles=%d heap vs resident", top.Profiles),
				maxSpillHeap, top.HeapVsResident))
		}
	}

	for _, c := range checks {
		status := "ok"
		if !c.ok {
			status = "REGRESSED"
		}
		delta := ""
		if c.baseline > 0 && c.current > 0 {
			delta = fmt.Sprintf("%+.1f%%", (c.current/c.baseline-1)*100)
		}
		fmt.Fprintf(w, "%-45s base %14.1f  cur %14.1f  %7s  %s %s\n",
			c.metric, c.baseline, c.current, delta, status, c.note)
	}
	return failures, nil
}
