// Command blastcli runs the BLAST pipeline over CSV entity collections
// and emits the retained comparisons.
//
// Input collections are long-form CSV triples (id, attribute, value), as
// produced by cmd/datagen. With two collections the run is clean-clean
// ER; with one it is dirty ER. When a ground-truth CSV (id1, id2) is
// supplied the blocking quality (PC, PQ, F1) is reported on stderr.
//
// Usage:
//
//	blastcli -e1 a.csv -e2 b.csv [-truth t.csv] [-out pairs.csv]
//	blastcli -e1 dirty.csv -induction ac -c 4
package main

import (
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"blast"
	"blast/internal/datasets"
	"blast/internal/metablocking"
	"blast/internal/model"
	"blast/internal/text"
)

func main() {
	e1Path := flag.String("e1", "", "first (or only) collection CSV (required)")
	e2Path := flag.String("e2", "", "second collection CSV (clean-clean ER)")
	truthPath := flag.String("truth", "", "ground truth CSV (optional, enables quality report)")
	outPath := flag.String("out", "", "output CSV of retained pairs (default stdout)")
	induction := flag.String("induction", "lmi", "attribute-match induction: lmi | ac | none")
	alpha := flag.Float64("alpha", 0.9, "LMI candidate factor")
	c := flag.Float64("c", 2, "BLAST local threshold divisor (higher = more recall)")
	d := flag.Float64("d", 2, "BLAST threshold combiner")
	purge := flag.Float64("purge", 0.5, "block purging ratio")
	filter := flag.Float64("filter", 0.8, "block filtering keep ratio")
	lshRows := flag.Int("lsh-rows", 0, "LSH rows per band (0 = exhaustive induction)")
	lshBands := flag.Int("lsh-bands", 0, "LSH bands")
	pruning := flag.String("pruning", "blast", "pruning: blast | wnp1 | wnp2 | cnp1 | cnp2 | wep | cep")
	transform := flag.String("transform", "token", "value transformation: token | qgram3 | suffix3")
	dumpClusters := flag.Bool("dump-clusters", false, "print the discovered attribute clusters to stderr")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	if err := run(*e1Path, *e2Path, *truthPath, *outPath, *induction, *pruning, *transform,
		*alpha, *c, *d, *purge, *filter, *lshRows, *lshBands, *seed, *dumpClusters); err != nil {
		fmt.Fprintln(os.Stderr, "blastcli:", err)
		os.Exit(1)
	}
}

func run(e1Path, e2Path, truthPath, outPath, induction, pruning, transform string,
	alpha, c, d, purge, filter float64, lshRows, lshBands int, seed uint64, dumpClusters bool) error {
	if e1Path == "" {
		return fmt.Errorf("-e1 is required")
	}
	e1, err := loadCollection(e1Path, "E1")
	if err != nil {
		return err
	}
	ds := &model.Dataset{Name: "cli", Kind: model.Dirty, E1: e1, Truth: model.NewGroundTruth()}
	if e2Path != "" {
		e2, err := loadCollection(e2Path, "E2")
		if err != nil {
			return err
		}
		ds.Kind = model.CleanClean
		ds.E2 = e2
	}
	if truthPath != "" {
		f, err := os.Open(truthPath)
		if err != nil {
			return err
		}
		truth, err := datasets.ReadTruth(f, ds)
		f.Close() //blast:allow syncerr -- read-only file: a close error cannot lose data already parsed
		if err != nil {
			return err
		}
		ds.Truth = truth
	}

	opt := blast.DefaultOptions()
	opt.Alpha = alpha
	opt.C = c
	opt.D = d
	opt.PurgeRatio = purge
	opt.FilterRatio = filter
	opt.Seed = seed
	switch transform {
	case "", "token":
		// default tokenizer
	case "qgram3":
		opt.Transform = text.NewQGram(3)
	case "suffix3":
		opt.Transform = text.NewSuffix(3)
	default:
		return fmt.Errorf("unknown transform %q", transform)
	}
	switch induction {
	case "lmi":
		opt.Induction = blast.LMI
	case "ac":
		opt.Induction = blast.AC
	case "none":
		opt.Induction = blast.NoInduction
	default:
		return fmt.Errorf("unknown induction %q", induction)
	}
	switch pruning {
	case "blast":
		opt.Pruning = metablocking.BlastWNP
	case "wnp1":
		opt.Pruning = metablocking.WNP1
	case "wnp2":
		opt.Pruning = metablocking.WNP2
	case "cnp1":
		opt.Pruning = metablocking.CNP1
	case "cnp2":
		opt.Pruning = metablocking.CNP2
	case "wep":
		opt.Pruning = metablocking.WEP
	case "cep":
		opt.Pruning = metablocking.CEP
	default:
		return fmt.Errorf("unknown pruning %q", pruning)
	}
	if lshRows > 0 && lshBands > 0 {
		opt.LSH = &blast.LSHOptions{Rows: lshRows, Bands: lshBands, Seed: seed}
	}

	res, err := blast.Run(ds, opt)
	if err != nil {
		return err
	}
	if dumpClusters {
		fmt.Fprint(os.Stderr, res.LooseSchemaReport())
	}

	writePairs := func(out io.Writer) error {
		w := csv.NewWriter(out)
		if err := w.Write([]string{"id1", "id2"}); err != nil {
			return err
		}
		for _, p := range res.Pairs {
			if err := w.Write([]string{ds.Profile(int(p.U)).ID, ds.Profile(int(p.V)).ID}); err != nil {
				return err
			}
		}
		w.Flush()
		return w.Error()
	}
	if outPath != "" {
		// The output file is the command's deliverable: sync and close
		// errors must fail the run, not vanish behind a deferred Close.
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		werr := writePairs(f)
		if werr == nil {
			werr = f.Sync()
		}
		if err := errors.Join(werr, f.Close()); err != nil {
			return fmt.Errorf("%s: %w", outPath, err)
		}
	} else if err := writePairs(os.Stdout); err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "blastcli: %d comparisons retained (%s overhead)\n",
		len(res.Pairs), res.Overhead().Round(1000000))
	if ds.Truth.Size() > 0 {
		fmt.Fprintf(os.Stderr, "blastcli: %v\n", res.Quality)
	}
	return nil
}

func loadCollection(path, name string) (*model.Collection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //blast:allow syncerr -- read-only file: a close error cannot lose data already parsed
	return datasets.ReadCollection(f, name)
}
