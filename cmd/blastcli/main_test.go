package main

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"testing"

	"blast/internal/datasets"
)

// writeFixture materializes a small clean-clean benchmark to dir and
// returns the three file paths.
func writeFixture(t *testing.T, dir string) (e1, e2, truth string) {
	t.Helper()
	ds := datasets.PRD(0.05, 3)
	e1 = filepath.Join(dir, "e1.csv")
	e2 = filepath.Join(dir, "e2.csv")
	truth = filepath.Join(dir, "truth.csv")
	mk := func(path string, fn func(f *os.File) error) {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			t.Fatal(err)
		}
	}
	mk(e1, func(f *os.File) error { return datasets.WriteCollection(f, ds.E1) })
	mk(e2, func(f *os.File) error { return datasets.WriteCollection(f, ds.E2) })
	mk(truth, func(f *os.File) error { return datasets.WriteTruth(f, ds) })
	return
}

func runCLI(t *testing.T, e1, e2, truth, out, induction, pruning, transform string) error {
	t.Helper()
	return run(e1, e2, truth, out, induction, pruning, transform,
		0.9, 2, 2, 0.5, 0.8, 0, 0, 1, false)
}

func TestCLICleanClean(t *testing.T) {
	dir := t.TempDir()
	e1, e2, truth := writeFixture(t, dir)
	out := filepath.Join(dir, "pairs.csv")
	if err := runCLI(t, e1, e2, truth, out, "lmi", "blast", "token"); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("no pairs written: %d rows", len(rows))
	}
	if rows[0][0] != "id1" || rows[0][1] != "id2" {
		t.Errorf("bad header: %v", rows[0])
	}
}

func TestCLIDirtySingleCollection(t *testing.T) {
	dir := t.TempDir()
	ds := datasets.Census(0.05, 3)
	e1 := filepath.Join(dir, "dirty.csv")
	f, err := os.Create(e1)
	if err != nil {
		t.Fatal(err)
	}
	if err := datasets.WriteCollection(f, ds.E1); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out := filepath.Join(dir, "pairs.csv")
	if err := runCLI(t, e1, "", "", out, "lmi", "blast", "token"); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatal("no output written")
	}
}

func TestCLIVariants(t *testing.T) {
	dir := t.TempDir()
	e1, e2, truth := writeFixture(t, dir)
	for _, tc := range [][3]string{
		{"ac", "wnp1", "token"},
		{"none", "cnp2", "token"},
		{"lmi", "wep", "qgram3"},
		{"lmi", "cep", "suffix3"},
	} {
		out := filepath.Join(dir, "out-"+tc[0]+tc[1]+tc[2]+".csv")
		if err := runCLI(t, e1, e2, truth, out, tc[0], tc[1], tc[2]); err != nil {
			t.Errorf("%v: %v", tc, err)
		}
	}
}

func TestCLIErrors(t *testing.T) {
	dir := t.TempDir()
	e1, e2, truth := writeFixture(t, dir)
	cases := []struct {
		name string
		fn   func() error
	}{
		{"missing e1", func() error { return runCLI(t, "", e2, truth, "", "lmi", "blast", "token") }},
		{"bad induction", func() error { return runCLI(t, e1, e2, truth, "", "xx", "blast", "token") }},
		{"bad pruning", func() error { return runCLI(t, e1, e2, truth, "", "lmi", "xx", "token") }},
		{"bad transform", func() error { return runCLI(t, e1, e2, truth, "", "lmi", "blast", "xx") }},
		{"missing file", func() error { return runCLI(t, dir+"/nope.csv", e2, truth, "", "lmi", "blast", "token") }},
	}
	for _, tc := range cases {
		if err := tc.fn(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestCLILSHAndClusters(t *testing.T) {
	dir := t.TempDir()
	e1, e2, truth := writeFixture(t, dir)
	out := filepath.Join(dir, "pairs.csv")
	if err := run(e1, e2, truth, out, "lmi", "blast", "token",
		0.9, 2, 2, 0.5, 0.8, 5, 30, 1, true); err != nil {
		t.Fatalf("run with LSH + dump: %v", err)
	}
}
