package blast

// The candidate-serving Index: the blocking-and-filtering literature
// frames blocking as an index you build once and probe many times, and
// BLAST's pruning thresholds are node-local (theta_i = M_i/c), so the
// weighted, pruned blocking graph freezes naturally into a per-profile
// lookup structure. Index is the online counterpart of the batch
// pipeline — Candidates answers "who should profile i be compared
// against?" in O(degree(i)) without touching any other node's state —
// and the stepping stone toward incremental meta-blocking (profile
// insertions only dirty the adjacency runs of co-blocked nodes).

import (
	"context"
	"errors"
	"slices"
	"time"

	"blast/internal/blocking"
	"blast/internal/graph"
	"blast/internal/metablocking"
	"blast/internal/model"
	"blast/internal/prune"
)

var errSupervisedIndex = errors.New("blast: supervised meta-blocking has no candidate-serving index form")

// Candidate is one candidate comparison served by Index.Candidates: a
// co-candidate profile and the BLAST edge weight that retained it.
type Candidate struct {
	// ID is the global profile id of the co-candidate.
	ID int32
	// Weight is the edge weight under the index's weighting scheme.
	Weight float64
}

// Index is the frozen, queryable form of a completed pipeline run: the
// cleaned block collection, the CSR adjacency with final edge weights,
// the per-node pruning thresholds, and the per-entry retention decision.
// It is immutable after construction and safe for concurrent queries.
type Index struct {
	kind       model.Kind
	collection *blocking.Collection
	schema     *Schema
	csr        *graph.CSR
	retained   []bool
	theta      []float64
	pairs      []model.IDPair
	buildTime  time.Duration
}

// BuildIndex runs the full pipeline on the dataset and freezes the
// outcome into a candidate-serving Index: InduceSchema, Block, then
// IndexBlocks. Supervised meta-blocking has no per-node decision
// structure and is rejected.
func (p *Pipeline) BuildIndex(ctx context.Context, ds *model.Dataset) (*Index, error) {
	if p.opt.Supervised {
		// Fail before the expensive phases: the configuration alone
		// decides this.
		return nil, errSupervisedIndex
	}
	sch, err := p.InduceSchema(ctx, ds)
	if err != nil {
		return nil, err
	}
	blocks, err := p.Block(ctx, ds, sch)
	if err != nil {
		return nil, err
	}
	return p.IndexBlocks(ctx, blocks)
}

// IndexBlocks freezes a Blocks artifact into an Index: the node-centric
// (CSR) blocking graph is built and weighted, the configured pruning
// decides retention, and the per-entry decisions are kept alongside the
// weights for per-profile lookup. The engine option is ignored — an
// index is by nature node-centric — but the retained pairs are
// byte-identical to both engines' batch output.
func (p *Pipeline) IndexBlocks(ctx context.Context, blocks *Blocks) (*Index, error) {
	if p.opt.Supervised {
		return nil, errSupervisedIndex
	}
	if blocks == nil || blocks.Collection == nil {
		return nil, errors.New("blast: IndexBlocks requires a non-nil Blocks artifact")
	}
	t0 := time.Now()
	c := blocks.Collection
	csr, err := graph.BuildCSRParallelCtx(ctx, c, p.opt.Workers)
	if err != nil {
		return nil, err
	}
	p.opt.Scheme.ApplyCSR(csr)
	csr.ReleaseStats()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	pairs, err := metablocking.PruneCSR(ctx, csr, p.metaConfig())
	if err != nil {
		return nil, err
	}

	// Mark both entries of every retained edge. The pruning schemes emit
	// pairs in canonical order — the exact order CanonicalMirrorCtx
	// visits edges — so a single merge pass resolves pair -> entry.
	retained := make([]bool, len(csr.Neighbors))
	next := 0
	err = csr.CanonicalMirrorCtx(ctx, func(u, v int32, pos, mirror int64) {
		if next < len(pairs) && pairs[next].U == u && pairs[next].V == v {
			retained[pos] = true
			retained[mirror] = true
			next++
		}
	})
	if err != nil {
		return nil, err
	}

	theta, err := nodeThresholds(ctx, csr, p.opt)
	if err != nil {
		return nil, err
	}

	ix := &Index{
		kind:       c.Kind,
		collection: c,
		schema:     blocks.Schema,
		csr:        csr,
		retained:   retained,
		theta:      theta,
		pairs:      pairs,
		buildTime:  time.Since(t0),
	}
	p.opt.progress("index", ix.buildTime)
	return ix, nil
}

// nodeThresholds materializes the per-node pruning thresholds theta_i
// for the threshold-based schemes through the same prune reducers the
// retention decision used (one extra O(E) pass over the adjacency
// weights — small next to the graph build). Global and cardinality
// schemes have no per-node threshold and yield nil.
func nodeThresholds(ctx context.Context, csr *graph.CSR, opt Options) ([]float64, error) {
	switch opt.Pruning {
	case metablocking.BlastWNP:
		return prune.BlastThresholds(ctx, csr, opt.C)
	case metablocking.WNP1, metablocking.WNP2:
		return prune.MeanThresholds(ctx, csr)
	default:
		return nil, nil
	}
}

// NumProfiles returns the number of profiles the index covers.
func (ix *Index) NumProfiles() int { return ix.csr.NumProfiles }

// NumEdges returns the number of distinct comparisons of the underlying
// blocking graph (before pruning).
func (ix *Index) NumEdges() int { return ix.csr.NumEdges() }

// NumRetained returns the number of comparisons the pruning retained —
// the length of Pairs.
func (ix *Index) NumRetained() int { return len(ix.pairs) }

// Kind returns the ER setting of the indexed dataset.
func (ix *Index) Kind() model.Kind { return ix.kind }

// Schema returns the Phase 1 artifact the index was blocked under (nil
// for a schema-agnostic index).
func (ix *Index) Schema() *Schema { return ix.schema }

// Blocks returns the cleaned block collection the index was built from.
// The collection is shared with the index and must not be modified.
func (ix *Index) Blocks() *blocking.Collection { return ix.collection }

// BuildTime returns the wall-clock time IndexBlocks spent freezing the
// index (graph, weighting, pruning and retention marks).
func (ix *Index) BuildTime() time.Duration { return ix.buildTime }

// Threshold returns theta_i, the node-local pruning threshold of a
// profile, for the threshold-based schemes (BlastWNP, WNP1, WNP2); 0 for
// profiles without edges, out-of-range ids, or schemes without per-node
// thresholds. The node-locality of theta_i is what makes per-profile
// serving (and, prospectively, incremental updates) possible.
func (ix *Index) Threshold(profile int) float64 {
	if ix.theta == nil || profile < 0 || profile >= len(ix.theta) {
		return 0
	}
	return ix.theta[profile]
}

// Candidates returns the retained candidate comparisons of one profile,
// ordered by descending weight (ties by ascending id). The result is
// freshly allocated; use AppendCandidates to amortize allocations in a
// serving loop.
func (ix *Index) Candidates(profile int) []Candidate {
	return ix.AppendCandidates(nil, profile)
}

// AppendCandidates appends the retained candidate comparisons of one
// profile to buf and returns the extended slice, ordering the appended
// portion by descending weight (ties by ascending id). Out-of-range
// profiles append nothing. Cost is O(degree) plus the sort of the
// retained run; no allocation occurs when buf has capacity.
func (ix *Index) AppendCandidates(buf []Candidate, profile int) []Candidate {
	if profile < 0 || profile >= ix.csr.NumProfiles {
		return buf
	}
	start := len(buf)
	lo, hi := ix.csr.Offsets[profile], ix.csr.Offsets[profile+1]
	for p := lo; p < hi; p++ {
		if ix.retained[p] {
			buf = append(buf, Candidate{ID: ix.csr.Neighbors[p], Weight: ix.csr.Weights[p]})
		}
	}
	out := buf[start:]
	slices.SortFunc(out, func(a, b Candidate) int {
		switch {
		case a.Weight > b.Weight:
			return -1
		case a.Weight < b.Weight:
			return 1
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		default:
			return 0
		}
	})
	return buf
}

// Pairs returns the full batch output of the index: every retained
// comparison in canonical order, byte-identical to the Pairs of the
// staged pipeline and of legacy Run under the same options. The slice is
// freshly allocated and owned by the caller.
func (ix *Index) Pairs() []model.IDPair {
	return append([]model.IDPair(nil), ix.pairs...)
}
