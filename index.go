package blast

// The candidate-serving Index: the blocking-and-filtering literature
// frames blocking as an index you build once and probe many times, and
// BLAST's pruning thresholds are node-local (theta_i = M_i/c), so the
// weighted, pruned blocking graph freezes naturally into a per-profile
// lookup structure. Index is the online counterpart of the batch
// pipeline — Candidates answers "who should profile i be compared
// against?" in O(degree(i)) without touching any other node's state.
//
// Incremental meta-blocking builds on exactly that node-locality: a new
// profile only dirties the adjacency runs of its co-blocked neighbors,
// so Insert tokenizes the profile against the frozen schema, appends it
// to the live block collection, splices its adjacency run into a
// copy-on-write overlay over the CSR, reweighs only the edges whose
// weight inputs changed, re-reduces theta_i for exactly the touched
// nodes and re-evaluates only their retention marks — no global rebuild.
// When a change does invalidate a graph-global input (a new block under
// a |B|-dependent weighting, any insert under a cardinality-budget
// pruning), the index falls back to re-deriving weights and retention
// from the spliced adjacency, which still skips the dominant cost of a
// cold build: re-scanning the block collection into a graph.
//
// The correctness contract is strict and enforced by randomized
// differential tests: after any insert sequence, Pairs(), Candidates(i)
// and Threshold(i) are byte-identical to a cold IndexBlocks over the
// live (appended) collection. Cleaning is frozen — Block Purging and
// Filtering decisions are never revisited for streamed profiles.

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"time"

	"blast/internal/blocking"
	"blast/internal/graph"
	"blast/internal/metablocking"
	"blast/internal/model"
	"blast/internal/prune"
	"blast/internal/shard"
	"blast/internal/store"
)

var errSupervisedIndex = errors.New("blast: supervised meta-blocking has no candidate-serving index form")

// ErrPartialInsert reports that InsertAll failed after admitting a
// prefix of its batch: the returned ids identify the profiles that WERE
// admitted (the index is finalized and consistent over them — equivalent
// to a cold rebuild over its live collection), and the wrapped cause
// explains the failure. It can only arise from an internal invariant
// violation: user input is fully tokenized and validated before the
// first mutation, so malformed profiles never trigger it.
var ErrPartialInsert = errors.New("blast: batch partially admitted")

// Candidate is one candidate comparison served by Index.Candidates (and
// by Server.Candidates): a co-candidate profile id and the BLAST edge
// weight that retained it. It aliases the internal serving type so index
// and snapshot lookups share one representation.
type Candidate = shard.Candidate

// IndexStats summarizes the incremental-update state of an Index.
type IndexStats struct {
	// Inserts is the number of profiles inserted since construction.
	Inserts int
	// LocalizedBatches counts insert batches finalized on the localized
	// path (touched-run reweigh + re-prune only).
	LocalizedBatches int
	// RebuiltBatches counts insert batches that re-derived weights and
	// retention globally from the spliced adjacency (graph-global weight
	// input changed, or a non-node-local pruning scheme).
	RebuiltBatches int
	// Compactions counts overlay compactions (automatic and explicit).
	Compactions int
	// OverlayEntries is the number of adjacency entries currently held in
	// copy-on-write overlay rows.
	OverlayEntries int
	// OverlayLoad is OverlayEntries as a fraction of the base entries —
	// the automatic-compaction trigger metric.
	OverlayLoad float64
	// PendingKeys is the number of streamed blocking keys still waiting
	// for their first valid comparison before forming a block.
	PendingKeys int
}

// Index is the queryable form of a completed pipeline run: the cleaned
// block collection, the CSR adjacency with final edge weights, the
// per-node pruning thresholds, and the per-entry retention decision.
// It is safe for concurrent queries; Insert, InsertAll and Compact
// mutate it under an internal lock (readers see either the state before
// or after a whole insert batch, never a partial one).
type Index struct {
	mu         sync.RWMutex
	kind       model.Kind
	collection *blocking.Collection
	schema     *Schema
	opt        Options
	csr        *graph.CSR
	retained   []bool
	theta      []float64
	pairs      []model.IDPair
	pairsValid bool
	// retainedEntries counts marked adjacency entries (2 per retained
	// pair), so NumRetained stays O(1) while the pair list is lazily
	// invalidated by inserts.
	retainedEntries int64
	buildTime       time.Duration

	// Mutable state, nil until the first Insert.
	app   *blocking.Appender
	ov    *graph.Overlay
	stats IndexStats

	// insertFail, when non-nil, is consulted before each profile of an
	// InsertAll batch mutates the index — a test failpoint simulating
	// mid-batch structural failures. Always nil in production.
	insertFail func(batchIdx int) error
}

// BuildIndex runs the full pipeline on the dataset and freezes the
// outcome into a candidate-serving Index: InduceSchema, Block, then
// IndexBlocks. Supervised meta-blocking has no per-node decision
// structure and is rejected.
func (p *Pipeline) BuildIndex(ctx context.Context, ds *model.Dataset) (*Index, error) {
	if p.opt.Supervised {
		// Fail before the expensive phases: the configuration alone
		// decides this.
		return nil, errSupervisedIndex
	}
	sch, err := p.InduceSchema(ctx, ds)
	if err != nil {
		return nil, err
	}
	blocks, err := p.Block(ctx, ds, sch)
	if err != nil {
		return nil, err
	}
	return p.IndexBlocks(ctx, blocks)
}

// IndexBlocks freezes a Blocks artifact into an Index: the node-centric
// (CSR) blocking graph is built and weighted, the configured pruning
// decides retention, and the per-entry decisions are kept alongside the
// weights for per-profile lookup. The engine option is ignored — an
// index is by nature node-centric — but the retained pairs are
// byte-identical to both engines' batch output. The co-occurrence
// statistics are released after weighting (a query-only index stays at
// its serving footprint); the first Insert re-derives them with one
// graph pass over the retained collection.
func (p *Pipeline) IndexBlocks(ctx context.Context, blocks *Blocks) (*Index, error) {
	return p.indexBlocks(ctx, blocks, false)
}

// indexBlocks is IndexBlocks with control over the co-occurrence
// statistics: keepStats retains them on the frozen CSR so that serving
// replicas (which will certainly mutate) skip the one-off graph rebuild
// their first Insert would otherwise pay.
func (p *Pipeline) indexBlocks(ctx context.Context, blocks *Blocks, keepStats bool) (*Index, error) {
	if p.opt.Supervised {
		return nil, errSupervisedIndex
	}
	if blocks == nil || blocks.Collection == nil {
		return nil, errors.New("blast: IndexBlocks requires a non-nil Blocks artifact")
	}
	t0 := time.Now()
	c := blocks.Collection
	var csr *graph.CSR
	var err error
	if sp := p.opt.spillOptions(""); sp != nil {
		csr, err = graph.BuildCSRSpillCtx(ctx, c, *sp)
	} else {
		csr, err = graph.BuildCSRParallelCtx(ctx, c, p.opt.Workers)
	}
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Index, error) {
		// A spilled build owns temporary segment files; no Index will
		// carry them, so delete them on every error exit.
		if cerr := csr.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return nil, err
	}
	p.opt.Scheme.ApplyCSR(csr)
	if !keepStats {
		csr.ReleaseStats()
	}
	if err := ctx.Err(); err != nil {
		return fail(err)
	}

	pairs, retained, theta, err := freezeDecisions(ctx, csr, p.opt)
	if err != nil {
		return fail(err)
	}
	if !keepStats {
		// The pruning dispatch above was the last reader of the per-node
		// block counts (the CEP/CNP budgets); a query-only index serves
		// Candidates/Threshold/Pairs without them. The first Insert
		// re-derives them together with the co-occurrence statistics.
		csr.ReleaseBlockCounts()
	}

	ix := &Index{
		kind:            c.Kind,
		collection:      c,
		schema:          blocks.Schema,
		opt:             p.opt,
		csr:             csr,
		retained:        retained,
		theta:           theta,
		pairs:           pairs,
		pairsValid:      true,
		retainedEntries: 2 * int64(len(pairs)),
		buildTime:       time.Since(t0),
	}
	p.opt.progress("index", ix.buildTime)
	return ix, nil
}

// freezeDecisions derives the pruning outcome of a weighted CSR: the
// retained pairs in canonical order, the per-entry retention mask, and
// the per-node thresholds. It is the shared tail of a cold IndexBlocks
// and of the incremental path's global re-derivation, which is what
// makes the two byte-identical by construction.
func freezeDecisions(ctx context.Context, csr *graph.CSR, opt Options) ([]model.IDPair, []bool, []float64, error) {
	pairs, err := metablocking.PruneCSR(ctx, csr, metaConfigFromOptions(opt))
	if err != nil {
		return nil, nil, nil, err
	}
	// Mark both entries of every retained edge. The pruning schemes emit
	// pairs in canonical order — the exact order CanonicalMirrorCtx
	// visits edges — so a single merge pass resolves pair -> entry.
	retained := make([]bool, csr.NumEntries())
	next := 0
	err = csr.CanonicalMirrorCtx(ctx, func(u, v int32, pos, mirror int64) {
		if next < len(pairs) && pairs[next].U == u && pairs[next].V == v {
			retained[pos] = true
			retained[mirror] = true
			next++
		}
	})
	if err != nil {
		return nil, nil, nil, err
	}
	theta, err := nodeThresholds(ctx, csr, opt)
	if err != nil {
		return nil, nil, nil, err
	}
	// Spilled page reads fail closed through the sticky error: reject
	// the freeze rather than adopting decisions derived from zeroed runs.
	if err := csr.Err(); err != nil {
		return nil, nil, nil, err
	}
	return pairs, retained, theta, nil
}

// nodeThresholds materializes the per-node pruning thresholds theta_i
// for the threshold-based schemes through the same prune reducers the
// retention decision used (one extra O(E) pass over the adjacency
// weights — small next to the graph build), parallelized over
// Options.Workers like the pruning itself. Global and cardinality
// schemes have no per-node threshold and yield nil.
func nodeThresholds(ctx context.Context, csr *graph.CSR, opt Options) ([]float64, error) {
	switch opt.Pruning {
	case metablocking.BlastWNP:
		return prune.BlastThresholds(ctx, csr, opt.C, opt.Workers)
	case metablocking.WNP1, metablocking.WNP2:
		return prune.MeanThresholds(ctx, csr, opt.Workers)
	default:
		return nil, nil
	}
}

// NumProfiles returns the number of profiles the index covers, including
// inserted ones.
func (ix *Index) NumProfiles() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.numProfilesLocked()
}

func (ix *Index) numProfilesLocked() int {
	if ix.ov != nil {
		return ix.ov.NumProfiles()
	}
	return ix.csr.NumProfiles
}

// NumEdges returns the number of distinct comparisons of the underlying
// blocking graph (before pruning).
func (ix *Index) NumEdges() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.ov != nil {
		return ix.ov.NumEdges()
	}
	return ix.csr.NumEdges()
}

// NumRetained returns the number of comparisons the pruning retained —
// the length of Pairs.
func (ix *Index) NumRetained() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return int(ix.retainedEntries / 2)
}

// Kind returns the ER setting of the indexed dataset.
func (ix *Index) Kind() model.Kind { return ix.kind }

// Schema returns the Phase 1 artifact the index was blocked under (nil
// for a schema-agnostic index).
func (ix *Index) Schema() *Schema { return ix.schema }

// Blocks returns the block collection backing the index. Before the
// first Insert this is the collection of the Blocks artifact the index
// was built from; the first Insert replaces it with a private clone that
// subsequent inserts extend (the artifact is never mutated). The
// returned collection must not be modified.
func (ix *Index) Blocks() *blocking.Collection {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.collection
}

// BuildTime returns the wall-clock time IndexBlocks spent freezing the
// index (graph, weighting, pruning and retention marks).
func (ix *Index) BuildTime() time.Duration { return ix.buildTime }

// Stats returns the incremental-update counters of the index.
func (ix *Index) Stats() IndexStats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	st := ix.stats
	if ix.ov != nil {
		st.OverlayEntries = ix.ov.OverlayEntries()
		st.OverlayLoad = ix.ov.OverlayLoad()
	}
	if ix.app != nil {
		st.PendingKeys = ix.app.PendingKeys()
	}
	return st
}

// Threshold returns theta_i, the node-local pruning threshold of a
// profile, for the threshold-based schemes (BlastWNP, WNP1, WNP2); 0 for
// profiles without edges, out-of-range ids, or schemes without per-node
// thresholds. The node-locality of theta_i is what makes per-profile
// serving and incremental updates possible.
func (ix *Index) Threshold(profile int) float64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.theta == nil || profile < 0 || profile >= len(ix.theta) {
		return 0
	}
	return ix.theta[profile]
}

// Candidates returns the retained candidate comparisons of one profile,
// ordered by descending weight (ties by ascending id). The result is
// freshly allocated and never nil; profiles without retained comparisons
// — including out-of-range ids, which are answered with an empty slice
// rather than a panic — yield a non-nil empty slice. Use
// AppendCandidates to amortize allocations in a serving loop.
func (ix *Index) Candidates(profile int) []Candidate {
	return ix.AppendCandidates(make([]Candidate, 0, 4), profile)
}

// AppendCandidates appends the retained candidate comparisons of one
// profile to buf and returns the extended slice, ordering the appended
// portion by descending weight (ties by ascending id). Out-of-range
// profiles append nothing. Cost is O(degree) plus the sort of the
// retained run; no allocation occurs when buf has capacity.
func (ix *Index) AppendCandidates(buf []Candidate, profile int) []Candidate {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if profile < 0 || profile >= ix.numProfilesLocked() {
		return buf
	}
	start := len(buf)
	if ix.ov != nil {
		run := ix.ov.Run(int32(profile))
		for i, v := range run.Neighbors {
			if run.Retained[i] {
				buf = append(buf, Candidate{ID: v, Weight: run.Weights[i]})
			}
		}
	} else if lo, hi := ix.csr.Offsets[profile], ix.csr.Offsets[profile+1]; lo < hi {
		// Through the run accessor, so a spilled index serves out of its
		// page cache with the same loop.
		nbr, wts := ix.csr.Run(profile)
		for p := lo; p < hi; p++ {
			if ix.retained[p] {
				buf = append(buf, Candidate{ID: nbr[p-lo], Weight: wts[p-lo]})
			}
		}
	}
	// shard.CompareCandidates is the one canonical serving order; using
	// it here keeps Index and Snapshot lookups byte-identical.
	slices.SortFunc(buf[start:], shard.CompareCandidates)
	return buf
}

// Pairs returns the full batch output of the index: every retained
// comparison in canonical order, byte-identical to the Pairs of the
// staged pipeline and of legacy Run under the same options (and, after
// inserts, to a cold IndexBlocks over the live collection). The slice is
// freshly allocated and owned by the caller. After inserts the pair list
// is rematerialized lazily on the first call.
func (ix *Index) Pairs() []model.IDPair {
	ix.mu.RLock()
	if ix.pairsValid {
		out := append([]model.IDPair(nil), ix.pairs...)
		ix.mu.RUnlock()
		return out
	}
	ix.mu.RUnlock()

	ix.mu.Lock()
	defer ix.mu.Unlock()
	if !ix.pairsValid {
		pairs := make([]model.IDPair, 0, ix.retainedEntries/2)
		// The overlay exists whenever pairs are invalidated; iterate the
		// live adjacency in canonical order, the exact order every
		// streaming pruning scheme emits.
		_ = ix.ov.ForEachCanonical(context.Background(), func(u, v int32, _ float64, retained bool) {
			if retained {
				pairs = append(pairs, model.IDPair{U: u, V: v})
			}
		})
		ix.pairs = pairs
		ix.pairsValid = true
	}
	return append([]model.IDPair(nil), ix.pairs...)
}

// Insert adds one profile to the index and returns its assigned global
// id. The profile is tokenized against the frozen schema (attributes
// unknown to the schema are not indexed), appended to the live block
// collection, and folded into the weighted, pruned blocking graph
// incrementally; afterwards the index is byte-identical to a cold
// IndexBlocks over the live collection. For clean-clean indexes the
// profile joins E2 — streaming new entities against a fixed reference
// collection; dirty indexes have a single source. The caller's original
// Dataset and Blocks artifacts are never mutated (the first Insert
// clones the collection).
//
// ctx is observed before any mutation; once the profile is appended the
// update always runs to completion so the index never ends up between
// states.
func (ix *Index) Insert(ctx context.Context, p *model.Profile) (int, error) {
	if p == nil {
		return -1, errors.New("blast: Insert requires a non-nil profile")
	}
	ids, err := ix.InsertAll(ctx, []model.Profile{*p})
	if len(ids) == 1 {
		return ids[0], err
	}
	return -1, err
}

// InsertAll adds a batch of profiles, amortizing the re-weighting and
// re-pruning work across the whole batch, and returns the assigned
// global ids in order. The whole batch is tokenized against the frozen
// schema before anything mutates (validate-then-apply), so user input
// can never strand a half-admitted batch. Cancellation is observed
// between profiles: on a cancelled context the already-appended prefix
// is finalized (leaving the index consistent and equivalent to a cold
// rebuild over it), the prefix ids are returned together with ctx.Err().
// Should an internal invariant violation interrupt the batch mid-way,
// the admitted prefix is finalized the same way and the error wraps
// ErrPartialInsert with the prefix ids returned.
func (ix *Index) InsertAll(ctx context.Context, profiles []model.Profile) ([]int, error) {
	if len(profiles) == 0 {
		return nil, ctx.Err()
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := ix.ensureMutableLocked(); err != nil {
		// The index is unchanged: nothing was admitted.
		return nil, partialInsertError(0, len(profiles), err)
	}

	// Validate-then-apply: all per-profile input processing (transform,
	// key function, dedup) runs before the first mutation, so the only
	// mid-batch failures left are cancellation and internal invariants.
	keys := make([][]blocking.KeyEntropy, len(profiles))
	for i := range profiles {
		keys[i] = ix.profileKeys(&profiles[i])
	}

	st := newInsertState()
	var ids []int
	var cancelErr error
	for i := range profiles {
		if err := ctx.Err(); err != nil {
			cancelErr = err
			break
		}
		if ix.insertFail != nil {
			if err := ix.insertFail(i); err != nil {
				if ferr := ix.finalizeLocked(st); ferr != nil {
					err = errors.Join(err, ferr)
				}
				return ids, partialInsertError(len(ids), len(profiles), err)
			}
		}
		id, err := ix.appendOneLocked(keys[i], st)
		if err != nil {
			// Structural invariant violation; the collection append
			// already happened, so finalize what landed before failing.
			if ferr := ix.finalizeLocked(st); ferr != nil {
				err = errors.Join(err, ferr)
			}
			return ids, partialInsertError(len(ids), len(profiles), err)
		}
		ids = append(ids, int(id))
	}
	if err := ix.finalizeLocked(st); err != nil {
		return ids, partialInsertError(len(ids), len(profiles), err)
	}
	return ids, cancelErr
}

// partialInsertError classifies a mid-batch failure: a batch that never
// admitted anything is a plain rejection, one that did wraps
// ErrPartialInsert so callers can detect the partial admission.
func partialInsertError(admitted, batch int, cause error) error {
	if admitted == 0 {
		return fmt.Errorf("blast: batch rejected before any admission: %w", cause)
	}
	return fmt.Errorf("%w (%d of %d profiles): %w", ErrPartialInsert, admitted, batch, cause)
}

// Compact folds the insert overlay into a fresh flat base CSR,
// preserving weights, retention marks and thresholds. It is a no-op on
// an index without materialized overlay rows. Automatic compaction is
// governed by Options.Compaction; this call forces one regardless.
// Cancellation is honored mid-fold: on error the overlay is untouched.
func (ix *Index) Compact(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.ov == nil || ix.ov.OverlayEntries() == 0 {
		return nil
	}
	return ix.compactLocked(ctx)
}

// ensureMutableLocked prepares the index for its first insert: the
// collection is cloned (the Blocks artifact stays frozen), an appender
// is indexed over the clone, the per-entry co-occurrence statistics —
// released after the cold build so query-only indexes stay at their
// serving footprint — are re-derived with one graph pass, and the CSR
// is wrapped in a copy-on-write overlay that takes ownership of the
// retention mask. A non-nil error means the index was left unchanged
// (it can only arise from reading a spilled graph's weights back).
func (ix *Index) ensureMutableLocked() error {
	if ix.ov != nil {
		return nil
	}
	collection := ix.collection.Clone()
	if err := ix.ensureResidentLocked(); err != nil {
		return err
	}
	ix.collection = collection
	ix.app = blocking.NewAppender(ix.collection)
	if (ix.csr.Common == nil && ix.csr.NumEntries() > 0) || ix.csr.BlockCounts == nil {
		// The rebuild is structurally byte-identical to the frozen CSR
		// (same collection, deterministic builder), so the computed
		// weights carry over entry for entry. It also restores the
		// per-node block counts a query-only index released.
		rebuilt, err := graph.BuildCSRParallelCtx(context.Background(), ix.collection, ix.opt.Workers)
		if err != nil {
			panic(err) // background context never cancels
		}
		rebuilt.Weights = ix.csr.Weights
		ix.csr = rebuilt
	}
	ix.ov = graph.NewOverlay(ix.csr, ix.retained)
	return nil
}

// ensureResidentLocked replaces a spilled CSR with a resident rebuild:
// the adjacency and statistics are rebuilt from the live collection
// (structurally byte-identical, the same determinism the mutable
// rebuild above relies on), the frozen weights are read back from the
// spill's weight segments, and the segment files are deleted. Mutation
// and snapshot export — everything beyond pure candidate serving —
// funnel through here: the overlay and the exported snapshot index
// resident arrays directly. No-op on a resident index.
func (ix *Index) ensureResidentLocked() error {
	old := ix.csr
	if !old.Spilled() {
		return nil
	}
	weights, err := old.MaterializeWeights()
	if err != nil {
		return err
	}
	rebuilt, err := graph.BuildCSRParallelCtx(context.Background(), ix.collection, ix.opt.Workers)
	if err != nil {
		panic(err) // background context never cancels
	}
	rebuilt.Weights = weights
	ix.csr = rebuilt
	return old.Close()
}

// ensureResident is the locked wrapper over ensureResidentLocked, for
// callers that need a resident index before cloning it (the durable
// replicated recovery clones the master per shard before any snapshot
// export would materialize it).
func (ix *Index) ensureResident() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.ensureResidentLocked()
}

// Spilled reports whether the index currently serves its adjacency from
// spilled segment files (Options.Storage = StorageFile and the build
// exceeded MemoryBudget). A spilled index materializes transparently on
// the first Insert or snapshot export.
func (ix *Index) Spilled() bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.csr.Spilled()
}

// StorageStats reports the residency counters of the index's graph
// storage: bytes of spill segment data on disk and the page-cache
// statistics accumulated by candidate serving. Both are zero for a
// resident index (including a spilled one already materialized by an
// Insert or a snapshot export).
func (ix *Index) StorageStats() (spillBytes int64, cache store.CacheStats) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.csr.SpillBytes(), ix.csr.CacheStats()
}

// Close releases the index's spilled segment files, if any. A resident
// index needs no Close (it is a no-op there); a spilled one leaks its
// spill directory until Close, Insert or a snapshot export reclaims it.
// The index must not be used after Close.
func (ix *Index) Close() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.csr.Close()
}

// insertState accumulates, across one InsertAll batch, everything the
// finalize step needs to decide between the localized and the global
// re-derivation path and to bound the localized work.
type insertState struct {
	newIDs []int32
	// created counts new blocks (graph-global |B| changed).
	created int
	// addedEdges counts spliced half-edges' canonical edges (|E| changed).
	addedEdges int
	// reweighRuns are existing nodes whose whole run must be reweighed:
	// their |B_i| changed (pending-key materialization) or, under an
	// ARCS-consuming scheme, their co-occurrence mass shifted.
	reweighRuns map[int32]struct{}
	// arcsBlocks are blocks that grew, dirtying the ARCS mass of every
	// pair inside them (tracked only for ARCS-consuming schemes).
	arcsBlocks map[int32]struct{}
}

func newInsertState() *insertState {
	return &insertState{
		reweighRuns: make(map[int32]struct{}),
		arcsBlocks:  make(map[int32]struct{}),
	}
}

// appendOneLocked performs the structural part of one insert: collection
// append, adjacency-run accumulation, overlay append and mirror splices,
// from the profile's pre-tokenized keys. Weighting and pruning are
// deferred to finalizeLocked.
func (ix *Index) appendOneLocked(keys []blocking.KeyEntropy, st *insertState) (int32, error) {
	res := ix.app.Append(keys)
	ix.ov.AddBlocks(len(res.Created))
	ix.ov.AddComparisons(res.ComparisonsDelta)
	for _, m := range res.CountChanged {
		ix.ov.IncBlockCount(m)
		st.reweighRuns[m] = struct{}{}
	}

	neighbors, common, arcs, entropy := ix.accumulateRun(res.ID)
	row := &graph.Row{
		Neighbors:  neighbors,
		Common:     common,
		ARCS:       arcs,
		EntropySum: entropy,
		Weights:    make([]float64, len(neighbors)),
		Retained:   make([]bool, len(neighbors)),
	}
	id, err := ix.ov.AppendRow(row, int32(len(res.Joined)))
	if err != nil {
		return -1, err
	}
	if id != res.ID {
		return -1, fmt.Errorf("blast: insert id drift: collection %d, graph %d", res.ID, id)
	}
	for i, v := range neighbors {
		if _, _, err := ix.ov.Splice(v, id, common[i], arcs[i], entropy[i]); err != nil {
			return -1, err
		}
	}
	if ix.theta != nil {
		ix.theta = append(ix.theta, 0)
	}

	st.newIDs = append(st.newIDs, id)
	st.created += len(res.Created)
	st.addedEdges += len(neighbors)
	if ix.opt.Scheme.UsesARCS() {
		for _, bi := range res.Joined {
			grown := true
			for _, ci := range res.Created {
				if ci == bi {
					grown = false // fresh two-member block: its only pair is new
					break
				}
			}
			if grown {
				st.arcsBlocks[bi] = struct{}{}
			}
		}
	}
	ix.stats.Inserts++
	return id, nil
}

// profileKeys tokenizes a profile against the frozen schema exactly as
// Phase 2 blocking would: the value transform extracts terms, the
// schema's key function qualifies them, and re-occurrences of a key
// within the profile are deduplicated.
func (ix *Index) profileKeys(p *model.Profile) []blocking.KeyEntropy {
	return tokenizeProfile(ix.schema, ix.kind, &ix.opt, p)
}

// tokenizeProfile is the schema tokenization shared by every streaming
// writer (replicated Index, partitioned partIndex): one implementation
// so the two topologies assign identical block keys to identical
// profiles.
func tokenizeProfile(schema *Schema, kind model.Kind, opt *Options, p *model.Profile) []blocking.KeyEntropy {
	key := schema.keyFunc()
	source := 0
	if kind == model.CleanClean {
		source = 1 // streamed profiles join E2
	}
	seen := make(map[string]bool)
	var out []blocking.KeyEntropy
	for _, pair := range p.Pairs {
		for _, tok := range opt.Transform.Terms(pair.Value) {
			k, h, ok := key(source, pair.Name, tok)
			if !ok || seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, blocking.KeyEntropy{Key: k, Entropy: h})
		}
	}
	return out
}

// accumulateRun computes a node's adjacency run (neighbors ascending,
// with co-occurrence accumulators) from its live block memberships,
// visiting blocks in ascending index order so every floating-point sum
// is bit-identical to a cold BuildCSR over the same collection.
func (ix *Index) accumulateRun(n int32) (neighbors, common []int32, arcs, entropy []float64) {
	type acc struct {
		common  int32
		arcs    float64
		entropy float64
	}
	c := ix.collection
	m := make(map[int32]*acc)
	add := func(j int32, inv, h float64) {
		a := m[j]
		if a == nil {
			a = &acc{}
			m[j] = a
			neighbors = append(neighbors, j)
		}
		a.common++
		a.arcs += inv
		a.entropy += h
	}
	for _, bi := range ix.app.BlocksOf(n) {
		b := &c.Blocks[bi]
		cmp := b.Comparisons()
		if cmp == 0 {
			continue
		}
		inv := 1 / float64(cmp)
		if b.P2 != nil {
			others := b.P2
			if int(n) >= c.Split {
				others = b.P1
			}
			for _, j := range others {
				add(j, inv, b.Entropy)
			}
			continue
		}
		for _, j := range b.P1 {
			if j != n {
				add(j, inv, b.Entropy)
			}
		}
	}
	slices.Sort(neighbors)
	common = make([]int32, len(neighbors))
	arcs = make([]float64, len(neighbors))
	entropy = make([]float64, len(neighbors))
	for i, j := range neighbors {
		a := m[j]
		common[i], arcs[i], entropy[i] = a.common, a.arcs, a.entropy
	}
	return neighbors, common, arcs, entropy
}

// finalizeLocked turns the batch's structural changes into final
// weights, thresholds and retention marks. It always runs to completion
// (no cancellation): interrupting between the collection append and the
// decision update would leave the index between states. A non-nil error
// reports a broken internal invariant; InsertAll surfaces it wrapped in
// ErrPartialInsert rather than panicking through the caller.
func (ix *Index) finalizeLocked(st *insertState) error {
	if len(st.newIDs) == 0 {
		return nil
	}
	ix.pairs, ix.pairsValid = nil, false

	// Fix co-occurrence accumulators first: under an ARCS-consuming
	// scheme every pair inside a grown block carries a changed 1/||b||
	// mass, so the member runs are re-accumulated from the live
	// collection (bit-identical to a cold build) before any weighting.
	if ix.opt.Scheme.UsesARCS() && len(st.arcsBlocks) > 0 {
		for _, n := range ix.membersOf(st.arcsBlocks) {
			_, common, arcs, entropy := ix.accumulateRun(n)
			if err := ix.ov.ReplaceStats(n, common, arcs, entropy); err != nil {
				// The spliced run always matches a fresh accumulation of
				// the live collection; a mismatch is a broken invariant.
				return err
			}
			st.reweighRuns[n] = struct{}{}
		}
	}

	localized := ix.opt.Pruning.NodeLocal() &&
		!(ix.opt.Scheme.UsesTotalBlocks() && st.created > 0) &&
		!(ix.opt.Scheme.UsesEdgeCount() && st.addedEdges > 0)
	if !localized {
		if err := ix.rebuildDecisionsLocked(); err != nil {
			return err
		}
		ix.stats.RebuiltBatches++
		return nil
	}
	if err := ix.localizedFinalize(st); err != nil {
		return err
	}
	ix.stats.LocalizedBatches++

	cp := ix.opt.Compaction
	if !cp.disabled() && ix.ov.OverlayEntries() >= cp.minEntries() && ix.ov.OverlayLoad() > cp.maxFraction() {
		// compactLocked cannot fail here: a mutable index always retains
		// its co-occurrence statistics and the background context never
		// cancels.
		_ = ix.compactLocked(context.Background())
	}
	return nil
}

// membersOf collects the distinct member profiles of a block set,
// ascending.
func (ix *Index) membersOf(blocks map[int32]struct{}) []int32 {
	seen := make(map[int32]struct{})
	var out []int32
	for bi := range blocks {
		b := &ix.collection.Blocks[bi]
		for _, m := range b.P1 {
			seen[m] = struct{}{}
		}
		for _, m := range b.P2 {
			seen[m] = struct{}{}
		}
	}
	for m := range seen {
		out = append(out, m)
	}
	slices.Sort(out)
	return out
}

// localizedFinalize is the fast path: reweigh exactly the edges whose
// inputs changed, re-reduce theta_i for the nodes whose run weights
// changed, and re-evaluate retention only where a weight or a threshold
// moved. Everything else keeps its frozen decision, which is provably
// the cold decision because its inputs are unchanged. A missing mirror
// entry (every spliced half-edge must exist on both endpoints) is a
// broken invariant, reported as an error rather than a panic so a
// caller's InsertAll fails instead of crashing the process.
func (ix *Index) localizedFinalize(st *insertState) error {
	ov := ix.ov
	w := ix.opt.Scheme.Weigher(ov.NumEdges(), ov.TotalBlocks())

	type edgeRef struct {
		u  int32 // canonical u < v
		v  int32
		pu int // position of v in u's run
		pv int // position of u in v's run
	}
	var dirtyEdges []edgeRef
	weightTouched := make(map[int32]struct{})

	// computeWeight evaluates the scheme for the canonical edge (u < v)
	// using u's entry statistics — the exact argument order ApplyCSR
	// uses, so recomputed values are bit-identical to a cold weighting.
	computeWeight := func(u, v int32, pu int) float64 {
		run := ov.Run(u)
		return w.Weight(run.Common[pu],
			ov.BlockCount(u), ov.BlockCount(v),
			int32(ov.Degree(u)), int32(ov.Degree(v)),
			run.ARCS[pu], run.EntropySum[pu])
	}

	// New edges: every spliced edge has its larger endpoint among the new
	// ids, so iterating the new rows and skipping larger neighbors (edges
	// between two new profiles, owned by the later one) enumerates each
	// exactly once, always in canonical orientation.
	for _, x := range st.newIDs {
		run := ov.Run(x)
		for pos := range run.Neighbors {
			v := run.Neighbors[pos]
			if v > x {
				continue
			}
			pv, ok := ov.FindNeighbor(v, x)
			if !ok {
				return fmt.Errorf("blast: missing mirror entry (%d,%d)", v, x)
			}
			wt := computeWeight(v, x, pv)
			ov.SetWeight(x, pos, wt)
			ov.SetWeight(v, pv, wt)
			weightTouched[x] = struct{}{}
			weightTouched[v] = struct{}{}
			dirtyEdges = append(dirtyEdges, edgeRef{u: v, v: x, pu: pv, pv: pos})
		}
	}

	// Runs whose weight inputs changed wholesale (|B_i| bumped by a
	// pending-key materialization, or ARCS mass re-accumulated): compare
	// against the stored weight so only genuine changes propagate.
	for n := range st.reweighRuns {
		run := ov.Run(n)
		for pos := range run.Neighbors {
			v := run.Neighbors[pos]
			pv, ok := ov.FindNeighbor(v, n)
			if !ok {
				return fmt.Errorf("blast: missing mirror entry (%d,%d)", v, n)
			}
			u1, p1, u2, p2 := n, pos, v, pv
			if v < n {
				u1, p1, u2, p2 = v, pv, n, pos
			}
			wt := computeWeight(u1, u2, p1)
			if wt == ov.WeightAt(u1, p1) {
				continue
			}
			ov.SetWeight(u1, p1, wt)
			ov.SetWeight(u2, p2, wt)
			weightTouched[u1] = struct{}{}
			weightTouched[u2] = struct{}{}
			dirtyEdges = append(dirtyEdges, edgeRef{u: u1, v: u2, pu: p1, pv: p2})
		}
	}

	// Re-reduce theta_i for every node whose run weights (or run length)
	// changed; track which thresholds actually moved.
	thetaChanged := make(map[int32]struct{})
	for n := range weightTouched {
		run := ov.Run(n)
		var th float64
		switch ix.opt.Pruning {
		case metablocking.BlastWNP:
			th = prune.BlastThresholdOf(run.Weights, ix.opt.C)
		default: // WNP1, WNP2
			th = prune.MeanThresholdOf(run.Weights)
		}
		if th != ix.theta[n] {
			ix.theta[n] = th
			thetaChanged[n] = struct{}{}
		}
	}

	// Re-evaluate retention where a decision input moved: every edge
	// incident to a node whose theta changed, plus every edge whose
	// weight changed or is new.
	reEval := func(u, v int32, pu, pv int) {
		wt := ov.WeightAt(u, pu)
		keep := wt > 0 && ix.keepEdge(wt, ix.theta[u], ix.theta[v])
		if old := ov.SetRetained(u, pu, keep); old != keep {
			if keep {
				ix.retainedEntries++
			} else {
				ix.retainedEntries--
			}
		}
		if old := ov.SetRetained(v, pv, keep); old != keep {
			if keep {
				ix.retainedEntries++
			} else {
				ix.retainedEntries--
			}
		}
	}
	for n := range thetaChanged {
		run := ov.Run(n)
		for pos := range run.Neighbors {
			v := run.Neighbors[pos]
			pv, ok := ov.FindNeighbor(v, n)
			if !ok {
				return fmt.Errorf("blast: missing mirror entry (%d,%d)", v, n)
			}
			reEval(n, v, pos, pv)
		}
	}
	for _, e := range dirtyEdges {
		reEval(e.u, e.v, e.pu, e.pv)
	}
	return nil
}

// keepEdge applies the node-local retention criterion — the same
// predicates the streaming pruners use (positive weight is checked by
// the caller).
func (ix *Index) keepEdge(w, thU, thV float64) bool {
	switch ix.opt.Pruning {
	case metablocking.BlastWNP:
		return w >= (thU+thV)/ix.opt.D
	case metablocking.WNP1:
		return w >= thU || w >= thV
	case metablocking.WNP2:
		return w >= thU && w >= thV
	default:
		panic(fmt.Sprintf("blast: keepEdge on non-node-local pruning %v", ix.opt.Pruning))
	}
}

// rebuildDecisionsLocked is the global fallback: compact the spliced
// adjacency into a flat CSR, reapply the weighting scheme to every edge
// from the retained co-occurrence statistics, and re-derive pruning,
// retention marks and thresholds through the same code path a cold
// IndexBlocks uses. This skips only — but exactly — the dominant cost of
// a cold build: re-scanning the block collection into a graph.
func (ix *Index) rebuildDecisionsLocked() error {
	// Background context: the update is committed structurally, so it
	// must run to completion (see InsertAll's cancellation contract).
	ctx := context.Background()
	csr, _, err := ix.ov.Compact(ctx)
	if err != nil {
		// A mutable index always retains its statistics, so this is a
		// broken invariant — surfaced to InsertAll, not a panic.
		return err
	}
	ix.opt.Scheme.ApplyCSR(csr)
	pairs, retained, theta, err := freezeDecisions(ctx, csr, ix.opt)
	if err != nil {
		return err // background context never cancels
	}
	ix.csr = csr
	ix.retained = retained
	ix.theta = theta
	ix.pairs = pairs
	ix.pairsValid = true
	ix.retainedEntries = 2 * int64(len(pairs))
	ix.ov = graph.NewOverlay(csr, retained)
	return nil
}

// cloneForServing returns an independent writable replica of a freshly
// built (never-inserted) index, for the sharded server's
// one-replica-per-shard layout. The replica shares everything that is
// immutable from here on — the block collection (cloned lazily by the
// replica's own first Insert), the schema, and the CSR's structural and
// co-occurrence arrays, which no code path ever mutates in place — and
// copies the arrays the insert path writes through the overlay: edge
// weights, retention marks and thresholds. Cost is O(E), far below a
// rebuild.
func (ix *Index) cloneForServing() *Index {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.ov != nil {
		panic("blast: cloneForServing on an index that has absorbed inserts")
	}
	if ix.csr.Spilled() {
		// Replicas share the master's arrays; a spilled master has none
		// to share. The server materializes before cloning.
		panic("blast: cloneForServing on a spilled index")
	}
	csr := *ix.csr
	csr.Weights = slices.Clone(ix.csr.Weights)
	return &Index{
		kind:            ix.kind,
		collection:      ix.collection,
		schema:          ix.schema,
		opt:             ix.opt,
		csr:             &csr,
		retained:        slices.Clone(ix.retained),
		theta:           slices.Clone(ix.theta),
		pairs:           ix.pairs, // replaced, never mutated in place
		pairsValid:      ix.pairsValid,
		retainedEntries: ix.retainedEntries,
		buildTime:       ix.buildTime,
	}
}

// restoreIndex reconstructs a writable serving replica from a persisted
// snapshot plus the admitted insert batches the snapshot covers — the
// inverse of exportSnapshot, and the core of crash recovery. The
// expensive decision state (weights, retention, thresholds) comes from
// the snapshot; only the cheap structural state is recomputed: the
// batches are re-tokenized and re-appended to a clone of the seed
// collection (so the appender's block indexes and pending keys match a
// never-crashed replica exactly) and the CSR is rebuilt from that
// collection. The rebuild is structurally byte-identical to the CSR the
// snapshot was compacted from — the same determinism ensureMutableLocked
// already relies on — which is verified entry for entry before the
// snapshot's decision arrays are adopted; any drift (a foreign snapshot,
// a schema change, undetected corruption) fails closed.
func (p *Pipeline) restoreIndex(ctx context.Context, blocks *Blocks, snap *shard.Snapshot, prefix [][]model.Profile) (*Index, error) {
	if p.opt.Supervised {
		return nil, errSupervisedIndex
	}
	if blocks == nil || blocks.Collection == nil {
		return nil, errors.New("blast: restoreIndex requires a non-nil Blocks artifact")
	}
	t0 := time.Now()
	c := blocks.Collection.Clone()
	ix := &Index{
		kind:       c.Kind,
		collection: c,
		schema:     blocks.Schema,
		opt:        p.opt,
	}
	ix.app = blocking.NewAppender(c)
	for _, batch := range prefix {
		for i := range batch {
			ix.app.Append(ix.profileKeys(&batch[i]))
			ix.stats.Inserts++
		}
	}
	csr, err := graph.BuildCSRParallelCtx(ctx, c, p.opt.Workers)
	if err != nil {
		return nil, err
	}
	if csr.NumProfiles != snap.NumProfiles ||
		!slices.Equal(csr.Offsets, snap.Offsets) ||
		!slices.Equal(csr.Neighbors, snap.Neighbors) {
		return nil, errors.New("blast: snapshot does not match the adjacency rebuilt from its collection and batches")
	}
	csr.Weights = slices.Clone(snap.Weights)
	ix.csr = csr
	ix.retained = slices.Clone(snap.Retained)
	ix.theta = slices.Clone(snap.Theta)
	ix.retainedEntries = 2 * int64(snap.RetainedPairs)
	ix.ov = graph.NewOverlay(csr, ix.retained)
	ix.buildTime = time.Since(t0)
	return ix, nil
}

// exportSnapshot compacts any pending overlay state and publishes an
// immutable serving view of the index — the snapshot a shard swaps in.
// The structural arrays (Offsets, Neighbors) are shared with the now
// flat base CSR: later inserts only ever write base arrays through the
// overlay's write-through on Weights and the retention mask, both of
// which are copied here, and every compaction installs fresh arrays
// rather than mutating the old ones. On cancellation the index is left
// unchanged (a completed fold is kept; it is observationally neutral).
func (ix *Index) exportSnapshot(ctx context.Context) (*shard.Snapshot, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	// A snapshot shares the structural arrays with the base CSR; a
	// spilled index materializes them (and its weights) first.
	if err := ix.ensureResidentLocked(); err != nil {
		return nil, err
	}
	// Edge-less inserted profiles leave the overlay empty while still
	// growing the profile count, so staleness is judged on both.
	if ix.ov != nil && (ix.ov.OverlayEntries() > 0 || ix.ov.NumProfiles() != ix.csr.NumProfiles) {
		if err := ix.compactLocked(ctx); err != nil {
			return nil, err
		}
	}
	return &shard.Snapshot{
		NumProfiles:   ix.csr.NumProfiles,
		NumEdges:      ix.csr.NumEdges(),
		RetainedPairs: int(ix.retainedEntries / 2),
		Offsets:       ix.csr.Offsets,
		Neighbors:     ix.csr.Neighbors,
		Weights:       slices.Clone(ix.csr.Weights),
		Retained:      slices.Clone(ix.retained),
		Theta:         slices.Clone(ix.theta),
	}, nil
}

// compactLocked folds the overlay into a fresh flat base, preserving
// weights, retention marks and thresholds (no re-weighting). On error
// (cancellation) the overlay is left untouched.
func (ix *Index) compactLocked(ctx context.Context) error {
	csr, retained, err := ix.ov.Compact(ctx)
	if err != nil {
		return err
	}
	ix.csr = csr
	ix.retained = retained
	ix.ov = graph.NewOverlay(csr, retained)
	ix.stats.Compactions++
	return nil
}
