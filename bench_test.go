package blast_test

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices called out in DESIGN.md.
// Quality metrics are attached via b.ReportMetric so the -bench output
// carries the reproduced numbers next to the timings:
//
//	go test -bench=. -benchmem
//
// Scales are chosen so the full bench suite completes in minutes; use
// cmd/blastbench to run any experiment at larger scales.

import (
	"context"
	"fmt"
	"testing"

	"blast"
	"blast/internal/attr"
	"blast/internal/blocking"
	"blast/internal/datasets"
	"blast/internal/experiments"
	"blast/internal/graph"
	"blast/internal/lsh"
	"blast/internal/metablocking"
	"blast/internal/metrics"
	"blast/internal/text"
	"blast/internal/weights"
)

// benchCfg is the shared experiment configuration of the bench suite.
func benchCfg() experiments.Config { return experiments.Config{Scale: 0.5, Seed: 42} }

func BenchmarkTable2_DatasetGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable3_Blocking(b *testing.B) {
	var rows []experiments.Table3Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Table3(benchCfg(), []string{"ar1", "prd"})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Dataset == "ar1" && r.Variant == "L" {
			b.ReportMetric(r.FiltPC*100, "PC%")
			b.ReportMetric(r.FiltPQ*100, "PQ%")
		}
	}
}

// benchTable4 runs the comparison table for one dataset and reports
// BLAST's quality metrics.
func benchTable4(b *testing.B, dataset string) {
	b.Helper()
	var rows []experiments.CompareRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Table4(benchCfg(), dataset)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Method == "Blast" {
			b.ReportMetric(r.PC*100, "PC%")
			b.ReportMetric(r.PQ*100, "PQ%")
			b.ReportMetric(r.F1, "F1")
		}
	}
}

func BenchmarkTable4_AR1(b *testing.B) { benchTable4(b, "ar1") }
func BenchmarkTable4_AR2(b *testing.B) { benchTable4(b, "ar2") }
func BenchmarkTable4_PRD(b *testing.B) { benchTable4(b, "prd") }
func BenchmarkTable4_MOV(b *testing.B) { benchTable4(b, "mov") }

func BenchmarkTable5_DBP(b *testing.B) {
	cfg := experiments.Config{Scale: 0.25, Seed: 42} // dbp is the heavy benchmark
	var rows []experiments.CompareRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Table5(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Method == "Blast*" {
			b.ReportMetric(r.PC*100, "PC%")
			b.ReportMetric(r.PQ*100, "PQ%")
		}
	}
}

func BenchmarkTable6_LSHLMI(b *testing.B) {
	cfg := experiments.Config{Scale: 0.5, Seed: 42}
	var rows []experiments.Table6Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Table6(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Speedup of the mid-sweep LSH configuration over exhaustive LMI.
	if len(rows) > 3 && rows[3].Duration > 0 {
		b.ReportMetric(float64(rows[0].Duration)/float64(rows[3].Duration), "speedup")
	}
}

func benchTable7(b *testing.B, dataset string) {
	b.Helper()
	var rows []experiments.CompareRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Table7(benchCfg(), dataset)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Method == "Blast" {
			b.ReportMetric(r.PC*100, "PC%")
			b.ReportMetric(r.PQ*100, "PQ%")
		}
	}
}

func BenchmarkTable7_Census(b *testing.B) { benchTable7(b, "census") }
func BenchmarkTable7_Cora(b *testing.B)   { benchTable7(b, "cora") }
func BenchmarkTable7_CDDB(b *testing.B)   { benchTable7(b, "cddb") }

func BenchmarkFigure5_SCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curve, th := experiments.Figure5()
		if len(curve) == 0 || th <= 0 {
			b.Fatal("bad curve")
		}
	}
}

func BenchmarkFigure8_Ablation(b *testing.B) {
	var rows []experiments.Figure8Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Figure8(benchCfg(), []string{"ar1"})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Variant == "bch" {
			b.ReportMetric(r.PQ*100, "bchPQ%")
		}
		if r.Variant == "chi" {
			b.ReportMetric(r.PQ*100, "chiPQ%")
		}
	}
}

func BenchmarkFigure9_LMIvsAC(b *testing.B) {
	var rows []experiments.Figure9Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Figure9(benchCfg(), []string{"ar1", "prd"})
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) > 0 {
		b.ReportMetric(rows[0].DeltaPQ*100, "dPQ%")
	}
}

func BenchmarkFigure10_LSHSweep(b *testing.B) {
	cfg := experiments.Config{Scale: 0.25, Seed: 42}
	var rows []experiments.Figure10Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Figure10(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) > 0 {
		b.ReportMetric(rows[0].PC*100, "lowThPC%")
		b.ReportMetric(rows[len(rows)-1].PC*100, "highThPC%")
	}
}

func BenchmarkEndToEnd_Savings(b *testing.B) {
	var res *experiments.EndToEndResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.EndToEnd(benchCfg(), "ar1", 0.3)
		if err != nil {
			b.Fatal(err)
		}
	}
	if res.BlastComparisons > 0 {
		b.ReportMetric(float64(res.OriginalComparisons)/float64(res.BlastComparisons), "reduction")
	}
}

// --- Component microbenches -------------------------------------------

func BenchmarkComponent_TokenBlocking(b *testing.B) {
	ds := datasets.AR1(0.2, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := blocking.TokenBlocking(ds)
		if c.Len() == 0 {
			b.Fatal("no blocks")
		}
	}
}

func BenchmarkComponent_LMI(b *testing.B) {
	ds := datasets.DBP(0.05, 42)
	profiles := attr.ExtractProfiles(ds, text.NewTokenizer())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		part := attr.LMI(profiles, ds.Kind, attr.DefaultConfig())
		if part.NumClusters() == 0 {
			b.Fatal("no clusters")
		}
	}
}

func BenchmarkComponent_LMIWithLSH(b *testing.B) {
	ds := datasets.DBP(0.05, 42)
	profiles := attr.ExtractProfiles(ds, text.NewTokenizer())
	cfg := attr.DefaultConfig()
	cfg.LSH = &attr.LSHConfig{Rows: 5, Bands: 30, Seed: 42}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		part := attr.LMI(profiles, ds.Kind, cfg)
		if part.NumClusters() == 0 {
			b.Fatal("no clusters")
		}
	}
}

func BenchmarkComponent_GraphBuild(b *testing.B) {
	ds := datasets.AR1(0.2, 42)
	blocks := blocking.CleanWorkflow(blocking.TokenBlocking(ds), 0.5, 0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := graph.Build(blocks)
		if g.NumEdges() == 0 {
			b.Fatal("no edges")
		}
	}
}

func BenchmarkComponent_ChiSquaredWeighting(b *testing.B) {
	ds := datasets.AR1(0.2, 42)
	g := graph.Build(blocking.CleanWorkflow(blocking.TokenBlocking(ds), 0.5, 0.8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		weights.Blast().Apply(g)
	}
}

func BenchmarkComponent_MinHashSign(b *testing.B) {
	signer := lsh.NewSigner(150, 42)
	tokens := make([]uint64, 200)
	for i := range tokens {
		tokens[i] = uint64(i)*0x9e3779b97f4a7c15 + 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sig := signer.SignHashes(tokens)
		if len(sig) != 150 {
			b.Fatal("bad signature")
		}
	}
}

// --- Ablation benches ---------------------------------------------------

// BenchmarkAblation_ThresholdC sweeps BLAST's local threshold divisor c
// (Section 3.3.2: higher c -> higher PC, lower PQ).
func BenchmarkAblation_ThresholdC(b *testing.B) {
	ds := datasets.AR1(0.2, 42)
	for _, c := range []float64{1, 2, 4} {
		b.Run(fmt.Sprintf("c=%g", c), func(b *testing.B) {
			var q metrics.Quality
			for i := 0; i < b.N; i++ {
				opt := blast.DefaultOptions()
				opt.C = c
				res, err := blast.Run(ds, opt)
				if err != nil {
					b.Fatal(err)
				}
				q = res.Quality
			}
			b.ReportMetric(q.PC*100, "PC%")
			b.ReportMetric(q.PQ*100, "PQ%")
		})
	}
}

// BenchmarkAblation_GlueCluster measures the effect of the glue cluster
// (Section 4.4): disabling it drops unclustered attributes entirely.
func BenchmarkAblation_GlueCluster(b *testing.B) {
	ds := datasets.MOV(0.01, 42)
	for _, glue := range []bool{true, false} {
		b.Run(fmt.Sprintf("glue=%v", glue), func(b *testing.B) {
			var q metrics.Quality
			for i := 0; i < b.N; i++ {
				opt := blast.DefaultOptions()
				opt.Glue = glue
				res, err := blast.Run(ds, opt)
				if err != nil {
					b.Fatal(err)
				}
				q = res.Quality
			}
			b.ReportMetric(q.PC*100, "PC%")
		})
	}
}

// BenchmarkAblation_FilterRatio sweeps the Block Filtering ratio (the
// paper fixes 0.8 as the PC-preserving tradeoff).
func BenchmarkAblation_FilterRatio(b *testing.B) {
	ds := datasets.AR1(0.2, 42)
	for _, ratio := range []float64{0.5, 0.8, 1.0} {
		b.Run(fmt.Sprintf("r=%g", ratio), func(b *testing.B) {
			var q metrics.Quality
			for i := 0; i < b.N; i++ {
				opt := blast.DefaultOptions()
				opt.FilterRatio = ratio
				res, err := blast.Run(ds, opt)
				if err != nil {
					b.Fatal(err)
				}
				q = res.Quality
			}
			b.ReportMetric(q.PC*100, "PC%")
			b.ReportMetric(q.PQ*100, "PQ%")
		})
	}
}

// BenchmarkAblation_WeightingScheme compares the weighting families under
// BLAST pruning (the Figure 8 wsh/chi/bch argument as a bench).
func BenchmarkAblation_WeightingScheme(b *testing.B) {
	ds := datasets.AR1(0.2, 42)
	opt := blast.DefaultOptions()
	res, err := blast.Run(ds, opt)
	if err != nil {
		b.Fatal(err)
	}
	blocks := res.Blocks
	for _, s := range []weights.Scheme{
		{Kind: weights.JS}, {Kind: weights.CBS},
		{Kind: weights.ChiSquared}, {Kind: weights.ChiSquared, Entropy: true},
	} {
		b.Run(s.Name(), func(b *testing.B) {
			var q metrics.Quality
			for i := 0; i < b.N; i++ {
				mb := metablocking.Run(blocks, metablocking.Config{
					Scheme: s, Pruning: metablocking.BlastWNP, C: 2, D: 2,
				})
				q = metrics.EvaluatePairs(mb.Pairs, ds.Truth)
			}
			b.ReportMetric(q.PQ*100, "PQ%")
		})
	}
}

// BenchmarkEngine_MetaBlocking compares the edge-list and node-centric
// meta-blocking engines end to end (graph + weighting + pruning) on the
// same cleaned block collection. Run with -benchmem: the node-centric
// engine's B/op is the headline — it never allocates the global edge
// accumulator.
func BenchmarkEngine_MetaBlocking(b *testing.B) {
	ds := datasets.AR1(0.4, 42)
	blocks := blocking.CleanWorkflow(blocking.TokenBlocking(ds), 0.5, 0.8)
	for _, engine := range []metablocking.Engine{metablocking.EdgeList, metablocking.NodeCentric} {
		b.Run(engine.String(), func(b *testing.B) {
			b.ReportAllocs()
			cfg := metablocking.DefaultConfig()
			cfg.Engine = engine
			cfg.Workers = 1
			var pairs int
			for i := 0; i < b.N; i++ {
				res := metablocking.Run(blocks, cfg)
				pairs = len(res.Pairs)
			}
			b.ReportMetric(float64(pairs), "pairs")
		})
	}
}

// BenchmarkEngine_CSRBuild isolates graph construction: edge-map
// accumulation (Build) vs per-node CSR assembly (BuildCSR), serial and
// parallel.
func BenchmarkEngine_CSRBuild(b *testing.B) {
	ds := datasets.AR1(0.4, 42)
	blocks := blocking.CleanWorkflow(blocking.TokenBlocking(ds), 0.5, 0.8)
	b.Run("edge-list", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if g := graph.Build(blocks); g.NumEdges() == 0 {
				b.Fatal("no edges")
			}
		}
	})
	b.Run("node-centric", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if g := graph.BuildCSR(blocks); g.NumEdges() == 0 {
				b.Fatal("no edges")
			}
		}
	})
	b.Run("node-centric-parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if g := graph.BuildCSRParallel(blocks, 4); g.NumEdges() == 0 {
				b.Fatal("no edges")
			}
		}
	})
}

func BenchmarkComponent_GraphBuildParallel(b *testing.B) {
	ds := datasets.AR1(0.4, 42)
	blocks := blocking.CleanWorkflow(blocking.TokenBlocking(ds), 0.5, 0.8)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := graph.BuildParallel(blocks, workers)
				if g.NumEdges() == 0 {
					b.Fatal("no edges")
				}
			}
		})
	}
}

// BenchmarkRestructuredKey compares the restructured-block key
// generation before/after the strconv rewrite: fmt.Sprintf("mb-%08d")
// boxes its argument and runs the formatter state machine per pair,
// the strconv-based append allocates only the final string.
func BenchmarkRestructuredKey(b *testing.B) {
	b.Run("sprintf", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if k := fmt.Sprintf("mb-%08d", i); len(k) < 11 {
				b.Fatal("bad key")
			}
		}
	})
	b.Run("strconv", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if k := blast.MBKeyForBench(i); len(k) < 11 {
				b.Fatal("bad key")
			}
		}
	})
}

// BenchmarkRestructuredBlocks measures the full block restructuring of a
// real result, the loop the strconv key rewrite targets.
func BenchmarkRestructuredBlocks(b *testing.B) {
	ds := datasets.AR1(0.2, 42)
	res, err := blast.Run(ds, blast.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rb := res.RestructuredBlocks(); rb.Len() != len(res.Pairs) {
			b.Fatal("bad restructuring")
		}
	}
}

// BenchmarkIndexCandidates measures the online serving path: one
// per-profile candidate lookup on a frozen Index (the -exp query
// experiment measures the same path across the registry datasets).
func BenchmarkIndexCandidates(b *testing.B) {
	ds := datasets.AR1(0.2, 42)
	p, err := blast.NewPipeline(blast.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	ix, err := p.BuildIndex(context.Background(), ds)
	if err != nil {
		b.Fatal(err)
	}
	var buf []blast.Candidate
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = ix.AppendCandidates(buf[:0], i%ix.NumProfiles())
	}
	_ = buf
}

// BenchmarkExtension_Baselines compares the blocking substrates feeding
// BLAST meta-blocking (the composability extension).
func BenchmarkExtension_Baselines(b *testing.B) {
	var rows []experiments.BaselineRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Baselines(experiments.Config{Scale: 0.3, Seed: 42}, "ar1")
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Blocking == "token+lmi" {
			b.ReportMetric(r.F1, "lmiF1")
		}
	}
}

// BenchmarkExtension_Scalability measures phase overhead growth with
// dataset scale.
func BenchmarkExtension_Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Scalability(experiments.Config{Scale: 0.2, Seed: 42}, "ar1", []float64{1, 2}, 2)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 2 {
			b.Fatal("bad series")
		}
	}
}

// BenchmarkAblation_TFIDFRepresentation compares binary/Jaccard vs
// TF-IDF/cosine attribute-match induction end to end.
func BenchmarkAblation_TFIDFRepresentation(b *testing.B) {
	ds := datasets.AR1(0.2, 42)
	for _, tfidf := range []bool{false, true} {
		b.Run(fmt.Sprintf("tfidf=%v", tfidf), func(b *testing.B) {
			var q metrics.Quality
			for i := 0; i < b.N; i++ {
				opt := blast.DefaultOptions()
				opt.TFIDF = tfidf
				res, err := blast.Run(ds, opt)
				if err != nil {
					b.Fatal(err)
				}
				q = res.Quality
			}
			b.ReportMetric(q.PC*100, "PC%")
			b.ReportMetric(q.PQ*100, "PQ%")
		})
	}
}
