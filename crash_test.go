package blast

// Crash-recovery harness: a child copy of the test binary runs a
// durable server and streams admitted batches, reporting each admission
// on stdout; the parent SIGKILLs it mid-stream — a real process death
// at an arbitrary admitted-batch boundary, not a simulated one — then
// reopens the directory in-process and checks the recovery contract:
// every batch whose ids were returned under SyncEvery=1 survives, and
// the recovered server is byte-identical to a never-crashed reference.

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"testing"
	"time"
)

const crashDirEnv = "BLAST_CRASH_DIR"

// TestCrashChild is the child half of the harness: not a test in its
// own right (it skips unless re-executed with the env var), it opens a
// durable server over the directory the parent chose and inserts the
// deterministic batch sequence until killed, printing each admitted
// batch index only after InsertAll returned its ids.
func TestCrashChild(t *testing.T) {
	dir := os.Getenv(crashDirEnv)
	if dir == "" {
		t.Skip("crash child: run by the harness only")
	}
	snapEvery, _ := strconv.Atoi(os.Getenv("BLAST_CRASH_SNAP"))
	p, err := NewPipeline(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := p.Serve(context.Background(), durDataset(), ServerOptions{
		Shards: 2, SwapOps: 1, Dir: dir, SyncEvery: 1, SnapshotEvery: snapEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 1000; k++ {
		if _, err := srv.InsertAll(context.Background(), durBatchFor(k)); err != nil {
			t.Fatalf("insert batch %d: %v", k, err)
		}
		// The ids are out: the batch is admitted and, at SyncEvery 1,
		// fsynced. Only now may the parent count it as durable.
		fmt.Printf("admitted %d\n", k)
	}
	// Never reached: the parent kills the process mid-stream.
}

// TestCrashRecovery kills the child after varying numbers of admitted
// batches, under both recovery modes (snapshot+suffix and pure WAL
// replay), and checks the recovered state.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("forks the test binary")
	}
	p, err := NewPipeline(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		killAfter int // admitted batches before SIGKILL
		snapEvery int
	}{
		{1, -1},
		{4, -1},
		{3, 1},
		{7, 2},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("kill=%d/snap=%d", tc.killAfter, tc.snapEvery), func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(os.Args[0], "-test.run=^TestCrashChild$", "-test.v")
			cmd.Env = append(os.Environ(),
				crashDirEnv+"="+dir,
				"BLAST_CRASH_SNAP="+strconv.Itoa(tc.snapEvery),
			)
			out, err := cmd.StdoutPipe()
			if err != nil {
				t.Fatal(err)
			}
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			// Count admissions off the pipe; kill after the threshold. The
			// child may have admitted MORE than we saw when the signal
			// lands — recovery must surface at least the observed count.
			admitted := 0
			sc := bufio.NewScanner(out)
			for sc.Scan() {
				var k int
				if _, err := fmt.Sscanf(sc.Text(), "admitted %d", &k); err != nil {
					continue
				}
				admitted = k + 1
				if admitted >= tc.killAfter {
					break
				}
			}
			if err := cmd.Process.Kill(); err != nil {
				t.Fatal(err)
			}
			cmd.Wait() // reaps; the kill makes a non-nil error expected
			if admitted < tc.killAfter {
				t.Fatalf("child died after %d admissions, wanted %d", admitted, tc.killAfter)
			}

			start := time.Now()
			srv, err := p.Serve(context.Background(), durDataset(), ServerOptions{
				Shards: 2, SwapOps: 1, Dir: dir, SyncEvery: 1, SnapshotEvery: tc.snapEvery,
			})
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			t.Logf("recovered in %v", time.Since(start))
			// Every admission whose ids were returned was fsynced first, so
			// none may be lost; batches in flight at the kill may or may not
			// have landed on every log — either way the recovered prefix
			// must be a consistent, reference-identical state.
			recovered := (srv.Admitted() - 40) / durBatchSize
			if recovered < admitted {
				t.Fatalf("recovered %d batches, child had admitted at least %d", recovered, admitted)
			}
			checkRecovered(t, "post-crash", p, srv, recovered)
			if err := srv.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
