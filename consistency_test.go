package blast

// Regression tests for the serving-path correctness fixes: Pairs must
// observe every shard at one position of the insert sequence (never a
// mix of epochs), and the Quiesce/Close error semantics must follow the
// documented state machine — closed servers report shard.ErrClosed, a
// poisoned server reports its real failure, and Close always releases
// its resources even when a worker died.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"blast/internal/shard"
)

// TestServerPairsEpochConsistency streams batches while hammering Pairs
// from concurrent readers: every result must be byte-identical to some
// PREFIX of the insert sequence — a state the server actually passed
// through — never a cross-shard mix of different prefixes. Run with
// -race in CI.
func TestServerPairsEpochConsistency(t *testing.T) {
	ctx := context.Background()
	const batches = 6
	p, err := NewPipeline(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Reference digests: the Pairs of every batch prefix, from an
	// isolated single-shard server driven through the same sequence.
	digests := make(map[string]int, batches+1)
	ref, err := p.Serve(ctx, durDataset(), ServerOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	snapshotDigest := func(srv *Server) string {
		pairs, err := srv.Pairs(ctx)
		if err != nil {
			t.Fatalf("reference Pairs: %v", err)
		}
		return fmt.Sprint(pairs)
	}
	digests[snapshotDigest(ref)] = 0
	for k := 0; k < batches; k++ {
		if _, err := ref.InsertAll(ctx, durBatchFor(k)); err != nil {
			t.Fatal(err)
		}
		if err := ref.Quiesce(ctx); err != nil {
			t.Fatal(err)
		}
		digests[snapshotDigest(ref)] = k + 1
	}
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}

	// Live server: 3 shards swapping on every batch, so publications
	// churn as fast as they possibly can while readers scan.
	srv, err := p.Serve(ctx, durDataset(), ServerOptions{Shards: 3, SwapOps: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for k := 0; k < batches; k++ {
			if _, err := srv.InsertAll(ctx, durBatchFor(k)); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				pairs, err := srv.Pairs(ctx)
				if err != nil {
					t.Errorf("Pairs: %v", err)
					return
				}
				if _, ok := digests[fmt.Sprint(pairs)]; !ok {
					t.Error("Pairs returned a state matching no prefix of the insert sequence")
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := srv.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	if got := snapshotDigest(srv); digests[got] != batches {
		t.Fatalf("quiesced Pairs matches prefix %d, want %d", digests[got], batches)
	}
}

// TestServerQuiesceCloseSemantics pins the error state machine across
// healthy, poisoned, and closed servers.
func TestServerQuiesceCloseSemantics(t *testing.T) {
	ctx := context.Background()
	p, err := NewPipeline(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	t.Run("healthy", func(t *testing.T) {
		srv, err := p.Serve(ctx, durDataset(), ServerOptions{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Quiesce(ctx); err != nil {
			t.Fatalf("Quiesce on healthy server: %v", err)
		}
		if err := srv.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if err := srv.Quiesce(ctx); !errors.Is(err, shard.ErrClosed) {
			t.Fatalf("Quiesce after Close = %v, want shard.ErrClosed", err)
		}
		if err := srv.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
	})

	t.Run("poisoned-worker", func(t *testing.T) {
		base := runtime.NumGoroutine()
		srv, err := p.Serve(ctx, durDataset(), ServerOptions{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		boom := errors.New("replica wedged")
		// Poison one replica's insert path: the next applied batch fails
		// on that shard's worker, which goes sticky. The happens-before is
		// the batch enqueue below.
		srv.replicas[1].insertFail = func(int) error { return boom }
		if _, err := srv.InsertAll(ctx, durBatchFor(0)); err != nil {
			t.Fatalf("admission must succeed (failure is async): %v", err)
		}
		// Quiesce reports the real failure — not ErrClosed, not nil.
		if err := srv.Quiesce(ctx); !errors.Is(err, boom) || errors.Is(err, shard.ErrClosed) {
			t.Fatalf("Quiesce on poisoned server = %v, want the worker error", err)
		}
		if err := srv.Err(); !errors.Is(err, boom) {
			t.Fatalf("Err = %v, want sticky worker error", err)
		}
		// Admission is now rejected with the sticky error.
		if _, err := srv.InsertAll(ctx, durBatchFor(1)); !errors.Is(err, boom) {
			t.Fatalf("InsertAll after poisoning = %v, want sticky error", err)
		}
		// Close surfaces the failure but still releases every worker.
		if err := srv.Close(); !errors.Is(err, boom) {
			t.Fatalf("Close on poisoned server = %v, want the worker error", err)
		}
		if err := srv.Close(); err != nil {
			t.Fatalf("second Close = %v, want nil (already released)", err)
		}
		if err := srv.Quiesce(ctx); !errors.Is(err, shard.ErrClosed) {
			t.Fatalf("Quiesce after Close = %v, want shard.ErrClosed", err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) && runtime.NumGoroutine() > base {
			time.Sleep(5 * time.Millisecond)
		}
		if n := runtime.NumGoroutine(); n > base {
			t.Errorf("Close on poisoned server leaked goroutines: %d > %d", n, base)
		}
	})

	t.Run("wal-append-failure", func(t *testing.T) {
		dir := t.TempDir()
		sopt := ServerOptions{Shards: 2, Dir: dir, SyncEvery: 1}
		srv, err := p.Serve(ctx, durDataset(), sopt)
		if err != nil {
			t.Fatal(err)
		}
		durInsert(t, srv, 0, 2)
		// Kill shard 1's WAL out from under the server: the next append
		// fails mid-broadcast and must roll the batch off shard 0's log —
		// the batch is not admitted, and the logs stay in agreement.
		if err := srv.dur.wals[1].Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := srv.InsertAll(ctx, durBatchFor(2)); err == nil {
			t.Fatal("InsertAll succeeded with a dead WAL")
		}
		if got := srv.Admitted(); got != 40+2*durBatchSize {
			t.Fatalf("failed journaling admitted profiles: %d", got)
		}
		if err := srv.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		// The directory recovers to exactly the journaled prefix.
		srv2, err := p.Serve(ctx, durDataset(), sopt)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		checkRecovered(t, "after append failure", p, srv2, 2)
		if err := srv2.Close(); err != nil {
			t.Fatal(err)
		}
	})
}
