package blast

// Tests of the Index invariant machinery introduced with durable
// serving: the validate-then-apply InsertAll contract (a mid-batch
// internal failure finalizes and reports the admitted prefix via
// ErrPartialInsert, never a half-finalized state), and the
// exportSnapshot/restoreIndex round trip crash recovery is built on —
// including the heavy localized-finalize workloads (ARCS re-accumulation,
// pending-key materialization) whose mirror-entry invariants used to be
// panics and are now errors on this path.

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"blast/internal/model"
	"blast/internal/stats"
	"blast/internal/weights"
)

// TestInsertAllFailpointPartialAdmission drives InsertAll into a
// mid-batch internal failure via the test failpoint and pins the
// contract: the error wraps ErrPartialInsert, exactly the admitted
// prefix ids are returned, and the index is finalized — equivalent to a
// cold rebuild over what landed, and still writable.
func TestInsertAllFailpointPartialAdmission(t *testing.T) {
	ctx := context.Background()
	rng := stats.NewRNG(0xFA11)
	ds := synthDirty(rng, 30)
	p, err := NewPipeline(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sch, err := p.InduceSchema(ctx, ds)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := p.Block(ctx, ds, sch)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := p.IndexBlocks(ctx, blocks)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("invariant blown")
	ix.insertFail = func(i int) error {
		if i == 3 {
			return boom
		}
		return nil
	}
	batch := make([]model.Profile, 5)
	for i := range batch {
		batch[i] = synthProfile(rng, fmt.Sprintf("f%d", i))
	}
	ids, err := ix.InsertAll(ctx, batch)
	if !errors.Is(err, ErrPartialInsert) || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want ErrPartialInsert wrapping the cause", err)
	}
	if len(ids) != 3 || ids[0] != 30 || ids[2] != 32 {
		t.Fatalf("admitted prefix ids = %v, want [30 31 32]", ids)
	}
	ix.insertFail = nil
	// The partial admission is finalized: equivalent to a cold rebuild
	// over seed + the 3-profile prefix, and the index stays usable.
	checkIndexEquivalence(t, "after partial admission", p, ix)
	if ids, err := ix.InsertAll(ctx, batch[3:]); err != nil || len(ids) != 2 {
		t.Fatalf("insert after partial admission = %v, %v", ids, err)
	}
	checkIndexEquivalence(t, "after resumed insert", p, ix)
}

// TestInsertAllFailpointFirstProfile: a failure before anything is
// admitted is a plain rejection — no ErrPartialInsert, no ids, and the
// index is untouched.
func TestInsertAllFailpointFirstProfile(t *testing.T) {
	ctx := context.Background()
	rng := stats.NewRNG(0xFA12)
	ds := synthDirty(rng, 25)
	p, err := NewPipeline(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sch, err := p.InduceSchema(ctx, ds)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := p.Block(ctx, ds, sch)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := p.IndexBlocks(ctx, blocks)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("no admission")
	ix.insertFail = func(int) error { return boom }
	ids, err := ix.InsertAll(ctx, []model.Profile{synthProfile(rng, "x")})
	if errors.Is(err, ErrPartialInsert) {
		t.Fatalf("zero-admission failure wrongly reports a partial insert: %v", err)
	}
	if !errors.Is(err, boom) || len(ids) != 0 {
		t.Fatalf("err = %v, ids = %v; want the cause with no ids", err, ids)
	}
	if ix.NumProfiles() != 25 {
		t.Fatalf("rejected batch grew the index to %d profiles", ix.NumProfiles())
	}
	ix.insertFail = nil
	checkIndexEquivalence(t, "after rejection", p, ix)
}

// TestExportRestoreRoundTrip pins the recovery primitive under the
// workloads that stress the localized finalize machinery hardest: an
// ARCS-consuming scheme (whole-run re-accumulation on every grown
// block) and the default scheme, over several insert/export cycles. At
// every cycle the restored index must be equivalent to a cold rebuild
// AND remain writable in lockstep with the original.
func TestExportRestoreRoundTrip(t *testing.T) {
	ctx := context.Background()
	schemes := []weights.Scheme{
		{Kind: weights.ChiSquared, Entropy: true},
		{Kind: weights.ARCS, Entropy: true},
		{Kind: weights.ECBS},
	}
	for si, scheme := range schemes {
		t.Run(scheme.Name(), func(t *testing.T) {
			rng := stats.NewRNG(uint64(si)*104729 + 0xE5704E)
			ds := synthDirty(rng, 35)
			opt := DefaultOptions()
			opt.Scheme = scheme
			p, err := NewPipeline(opt)
			if err != nil {
				t.Fatal(err)
			}
			sch, err := p.InduceSchema(ctx, ds)
			if err != nil {
				t.Fatal(err)
			}
			blocks, err := p.Block(ctx, ds, sch)
			if err != nil {
				t.Fatal(err)
			}
			ix, err := p.IndexBlocks(ctx, blocks)
			if err != nil {
				t.Fatal(err)
			}
			var history [][]model.Profile
			for cycle := 0; cycle < 3; cycle++ {
				batch := make([]model.Profile, 4)
				for i := range batch {
					batch[i] = synthProfile(rng, fmt.Sprintf("c%d-%d", cycle, i))
				}
				if _, err := ix.InsertAll(ctx, batch); err != nil {
					t.Fatalf("cycle %d: %v", cycle, err)
				}
				history = append(history, batch)

				snap, err := ix.exportSnapshot(ctx)
				if err != nil {
					t.Fatalf("cycle %d: export: %v", cycle, err)
				}
				restored, err := p.restoreIndex(ctx, blocks, snap, history)
				if err != nil {
					t.Fatalf("cycle %d: restore: %v", cycle, err)
				}
				checkIndexEquivalence(t, fmt.Sprintf("cycle %d restored", cycle), p, restored)
				// The restored replica must continue the stream exactly as
				// the original does.
				next := []model.Profile{synthProfile(stats.NewRNG(uint64(cycle)+99), fmt.Sprintf("n%d", cycle))}
				if _, err := restored.InsertAll(ctx, next); err != nil {
					t.Fatalf("cycle %d: insert into restored: %v", cycle, err)
				}
				checkIndexEquivalence(t, fmt.Sprintf("cycle %d restored+insert", cycle), p, restored)
			}

			// A snapshot from a foreign prefix must fail closed, not restore
			// a wrong state.
			snap, err := ix.exportSnapshot(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := p.restoreIndex(ctx, blocks, snap, history[:1]); err == nil {
				t.Fatal("restore with a truncated batch prefix succeeded")
			}
		})
	}
}
