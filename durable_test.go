package blast

// Differential tests of durable serving: a server reopened over a
// durable directory — after a clean close or after byte-level damage to
// its logs and snapshots — must serve exactly what a cold IndexBlocks
// over the recovered union collection serves, and the recovered prefix
// must be precisely the one the WAL semantics dictate. The SIGKILL
// variant of the same contract lives in crash_test.go.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"blast/internal/model"
	"blast/internal/stats"
	"blast/internal/wal"
)

const durBatchSize = 3

// durBatchFor deterministically regenerates insert batch k, so a test
// (or the crash-test parent process) can reconstruct the exact insert
// sequence a server admitted without sharing state with it.
func durBatchFor(k int) []model.Profile {
	rng := stats.NewRNG(0xB10C + uint64(k)*2654435761)
	batch := make([]model.Profile, durBatchSize)
	for i := range batch {
		batch[i] = synthProfile(rng, fmt.Sprintf("d%d-%d", k, i))
	}
	return batch
}

// durDataset builds the deterministic seed dataset shared by the
// durable tests: same seed in, same blocks out, same manifest
// fingerprint across opens.
func durDataset() *model.Dataset {
	return synthDirty(stats.NewRNG(0xD00D), 40)
}

func durInsert(t *testing.T, srv *Server, from, to int) {
	t.Helper()
	ctx := context.Background()
	for k := from; k < to; k++ {
		ids, err := srv.InsertAll(ctx, durBatchFor(k))
		if err != nil {
			t.Fatalf("insert batch %d: %v", k, err)
		}
		if want := 40 + k*durBatchSize; ids[0] != want {
			t.Fatalf("batch %d ids start at %d, want %d", k, ids[0], want)
		}
	}
}

// durReferencePairs computes the expected Pairs of a server holding the
// seed plus the first nBatches insert batches, via an independent
// in-memory server.
func durReferencePairs(t *testing.T, p *Pipeline, nBatches int) []model.IDPair {
	t.Helper()
	ctx := context.Background()
	ref, err := p.Serve(ctx, durDataset(), ServerOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	durInsert(t, ref, 0, nBatches)
	if err := ref.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	pairs, err := ref.Pairs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return pairs
}

// checkRecovered asserts the full recovery contract: the reopened
// server admitted exactly wantBatches of the insert sequence, is
// internally equivalent to a cold rebuild over its union collection,
// and serves Pairs byte-identical to the independent reference.
func checkRecovered(t *testing.T, label string, p *Pipeline, srv *Server, wantBatches int) {
	t.Helper()
	if got, want := srv.Admitted(), 40+wantBatches*durBatchSize; got != want {
		t.Fatalf("%s: recovered %d admitted profiles, want %d (%d batches)", label, got, want, wantBatches)
	}
	checkServerEquivalence(t, label, p, srv)
	got, err := srv.Pairs(context.Background())
	if err != nil {
		t.Fatalf("%s: Pairs: %v", label, err)
	}
	assertSamePairs(t, label+" vs reference", durReferencePairs(t, p, wantBatches), got)
}

// TestDurableReopenMatrix runs open → stream → close → reopen across
// shard counts and snapshot/sync policies, two generations deep, and
// checks the recovery contract at every step. SnapshotEvery 1 recovers
// from snapshot + WAL suffix; -1 forces pure WAL replay; 0 (default
// cadence 64) recovers cold with an immediate snapshot of nothing —
// all three must land on the identical state.
func TestDurableReopenMatrix(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		shards, snapEvery, syncEvery int
	}{
		{1, 1, 1},
		{2, -1, 1},
		{3, 1, -1},
		{2, 0, 0},
	}
	for _, tc := range cases {
		label := fmt.Sprintf("shards=%d/snap=%d/sync=%d", tc.shards, tc.snapEvery, tc.syncEvery)
		t.Run(label, func(t *testing.T) {
			dir := t.TempDir()
			p, err := NewPipeline(DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			sopt := ServerOptions{
				Shards: tc.shards, SwapOps: 2,
				Dir: dir, SnapshotEvery: tc.snapEvery, SyncEvery: tc.syncEvery,
			}
			srv, err := p.Serve(ctx, durDataset(), sopt)
			if err != nil {
				t.Fatal(err)
			}
			// A fresh durable server behaves exactly like the in-memory one.
			checkRecovered(t, label+"/fresh", p, srv, 0)
			durInsert(t, srv, 0, 3)
			checkServerEquivalence(t, label+"/streamed", p, srv)
			if err := srv.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			// Pairs still serves after Close, from the drained state.
			if _, err := srv.Pairs(ctx); err != nil {
				t.Fatalf("Pairs after Close: %v", err)
			}

			srv2, err := p.Serve(ctx, durDataset(), sopt)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			checkRecovered(t, label+"/gen1", p, srv2, 3)
			durInsert(t, srv2, 3, 5)
			checkServerEquivalence(t, label+"/gen1-streamed", p, srv2)
			if err := srv2.Close(); err != nil {
				t.Fatalf("close gen1: %v", err)
			}

			// Second generation: recovery over a directory that was itself
			// produced by a recovery (epoch continuation, snapshot pruning).
			srv3, err := p.Serve(ctx, durDataset(), sopt)
			if err != nil {
				t.Fatalf("reopen gen2: %v", err)
			}
			checkRecovered(t, label+"/gen2", p, srv3, 5)
			if err := srv3.Close(); err != nil {
				t.Fatalf("close gen2: %v", err)
			}
		})
	}
}

// durOpen opens the durable server over dir with the canonical test
// policy (sync every batch, snapshot policy per snapEvery).
func durOpen(t *testing.T, p *Pipeline, dir string, shards, snapEvery int) (*Server, error) {
	t.Helper()
	return p.Serve(context.Background(), durDataset(), ServerOptions{
		Shards: shards, SwapOps: 2, Dir: dir, SnapshotEvery: snapEvery, SyncEvery: 1,
	})
}

// durSeedDir builds a closed durable directory holding nBatches.
func durSeedDir(t *testing.T, p *Pipeline, shards, snapEvery, nBatches int) string {
	t.Helper()
	dir := t.TempDir()
	srv, err := durOpen(t, p, dir, shards, snapEvery)
	if err != nil {
		t.Fatal(err)
	}
	durInsert(t, srv, 0, nBatches)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestDurableTornWAL damages the WAL tails at the byte level — partial
// final records, flipped bytes, wholesale truncation — and checks that
// recovery serves exactly the surviving batch prefix, never a torn or
// invented state.
func TestDurableTornWAL(t *testing.T) {
	p, err := NewPipeline(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	const shards, batches = 2, 4
	corruptions := []struct {
		name string
		// damage mutates the raw WAL bytes of one shard's log.
		damage func([]byte) []byte
		want   int // surviving batches
	}{
		{"truncate-1-byte", func(b []byte) []byte { return b[:len(b)-1] }, batches - 1},
		{"truncate-mid-record", func(b []byte) []byte { return b[:len(b)-len(b)/8] }, batches - 1},
		{"flip-last-byte", func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b }, batches - 1},
		{"flip-header-of-last-record", func(b []byte) []byte { b[len(b)-5] ^= 0x01; return b }, batches - 1},
		{"empty-file", func(b []byte) []byte { return nil }, 0},
		{"header-only", func(b []byte) []byte { return b[:8] }, 0},
	}
	for _, tc := range corruptions {
		for _, damaged := range []int{0, shards - 1} {
			t.Run(fmt.Sprintf("%s/shard%d", tc.name, damaged), func(t *testing.T) {
				dir := durSeedDir(t, p, shards, -1, batches)
				path := filepath.Join(dir, "wal", fmt.Sprintf("shard-%03d.wal", damaged))
				raw, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, tc.damage(raw), 0o644); err != nil {
					t.Fatal(err)
				}
				// Damaging ONE log must cut BOTH shards back to the common
				// prefix: a batch counts as admitted only if it is on every log.
				srv, err := durOpen(t, p, dir, shards, -1)
				if err != nil {
					t.Fatalf("reopen after %s: %v", tc.name, err)
				}
				checkRecovered(t, tc.name, p, srv, tc.want)
				if err := srv.Close(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestDurableWALDivergenceFailsClosed forges a same-position record that
// differs between two shards' logs: recovery must refuse to serve
// rather than guess which history is real.
func TestDurableWALDivergenceFailsClosed(t *testing.T) {
	p, err := NewPipeline(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	dir := durSeedDir(t, p, 2, -1, 3)
	path := filepath.Join(dir, "wal", "shard-000.wal")
	l, _, err := wal.Open(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Truncate(l.Records() - 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(wal.AppendBatch(nil, durBatchFor(99))); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := durOpen(t, p, dir, 2, -1); err == nil {
		t.Fatal("diverged WALs were silently replayed")
	}
}

// TestDurableSnapshotFallback damages persisted snapshots and checks
// the fallback ladder: older snapshot, then cold rebuild — never a
// corrupted state, and never losing WAL-journaled batches.
func TestDurableSnapshotFallback(t *testing.T) {
	p, err := NewPipeline(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	const shards, batches = 2, 4
	mutate := []struct {
		name   string
		damage func(t *testing.T, sdir string, names []string)
	}{
		{"flip-newest", func(t *testing.T, sdir string, names []string) {
			path := filepath.Join(sdir, names[len(names)-1])
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw[len(raw)/2] ^= 0x10
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"delete-all", func(t *testing.T, sdir string, names []string) {
			for _, name := range names {
				if err := os.Remove(filepath.Join(sdir, name)); err != nil {
					t.Fatal(err)
				}
			}
		}},
		{"truncate-newest", func(t *testing.T, sdir string, names []string) {
			path := filepath.Join(sdir, names[len(names)-1])
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, raw[:len(raw)/3], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range mutate {
		t.Run(tc.name, func(t *testing.T) {
			dir := durSeedDir(t, p, shards, 1, batches)
			for i := 0; i < shards; i++ {
				sdir := filepath.Join(dir, "snap", fmt.Sprintf("shard-%03d", i))
				entries, err := os.ReadDir(sdir)
				if err != nil {
					t.Fatal(err)
				}
				names := make([]string, 0, len(entries))
				for _, e := range entries {
					names = append(names, e.Name())
				}
				if len(names) == 0 {
					t.Fatalf("shard %d persisted no snapshots", i)
				}
				tc.damage(t, sdir, names)
			}
			srv, err := durOpen(t, p, dir, shards, 1)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			// The WAL holds every batch regardless of snapshot damage.
			checkRecovered(t, tc.name, p, srv, batches)
			if err := srv.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDurableManifestMismatch pins the fail-closed contract of the
// manifest: a durable directory only reopens under the layout and seed
// artifact it was created with.
func TestDurableManifestMismatch(t *testing.T) {
	ctx := context.Background()
	p, err := NewPipeline(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	dir := durSeedDir(t, p, 2, -1, 1)

	if _, err := durOpen(t, p, dir, 3, -1); err == nil {
		t.Error("reopen with a different shard count accepted")
	}
	otherSeed := synthDirty(stats.NewRNG(0xBEEF), 40)
	if _, err := p.Serve(ctx, otherSeed, ServerOptions{Shards: 2, Dir: dir, SyncEvery: 1}); err == nil {
		t.Error("reopen with a different seed artifact accepted")
	}
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := durOpen(t, p, dir, 2, -1); err == nil {
		t.Error("corrupt manifest accepted")
	}
}

// TestDurableOptionValidation: the durability knobs require Dir.
func TestDurableOptionValidation(t *testing.T) {
	ctx := context.Background()
	p, err := NewPipeline(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, sopt := range []ServerOptions{
		{SyncEvery: 1},
		{SnapshotEvery: 1},
		{SyncEvery: -1, SnapshotEvery: -1},
	} {
		if _, err := p.Serve(ctx, durDataset(), sopt); err == nil {
			t.Errorf("ServerOptions %+v accepted without Dir", sopt)
		}
	}
}
