package blast

// Durable serving under the partitioned topology: per-shard WALs hold
// only owned subsets and snapshots only owned rows, yet recovery must
// land on exactly the state a never-crashed replicated server (and a
// cold rebuild) would serve, and every reassembly disagreement must
// fail closed.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"blast/internal/model"
	"blast/internal/shard"
	"blast/internal/stats"
	"blast/internal/wal"
)

// durOpenPart opens a durable partitioned server over dir.
func durOpenPart(t *testing.T, p *Pipeline, dir string, shards, snapEvery int) (*Server, error) {
	t.Helper()
	return p.Serve(context.Background(), durDataset(), ServerOptions{
		Shards: shards, Topology: TopologyPartitioned, SwapOps: 2,
		Dir: dir, SnapshotEvery: snapEvery, SyncEvery: 1,
	})
}

// TestDurablePartitionedReopenMatrix is the partitioned mirror of
// TestDurableReopenMatrix: open → stream → close → reopen, two
// generations deep, across shard counts and snapshot policies.
// SnapshotEvery 1 lands reopens on the adoption path (a drained Close
// leaves every shard an at-cut owned snapshot); -1 forces the cold
// master-rebuild path. The reference pairs come from an independent
// replicated server, so every checkpoint is also a cross-topology
// equivalence check.
func TestDurablePartitionedReopenMatrix(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		shards, snapEvery, syncEvery int
	}{
		{1, 1, 1},
		{2, -1, 1},
		{3, 1, -1},
		{2, 0, 0},
		{4, 1, 1},
	}
	for _, tc := range cases {
		label := fmt.Sprintf("part/shards=%d/snap=%d/sync=%d", tc.shards, tc.snapEvery, tc.syncEvery)
		t.Run(label, func(t *testing.T) {
			dir := t.TempDir()
			p, err := NewPipeline(DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			sopt := ServerOptions{
				Shards: tc.shards, Topology: TopologyPartitioned, SwapOps: 2,
				Dir: dir, SnapshotEvery: tc.snapEvery, SyncEvery: tc.syncEvery,
			}
			srv, err := p.Serve(ctx, durDataset(), sopt)
			if err != nil {
				t.Fatal(err)
			}
			checkRecovered(t, label+"/fresh", p, srv, 0)
			durInsert(t, srv, 0, 3)
			checkServerEquivalence(t, label+"/streamed", p, srv)
			if err := srv.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			if _, err := srv.Pairs(ctx); err != nil {
				t.Fatalf("Pairs after Close: %v", err)
			}

			srv2, err := p.Serve(ctx, durDataset(), sopt)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			if got := srv2.Topology(); got != TopologyPartitioned {
				t.Fatalf("recovered topology %v", got)
			}
			checkRecovered(t, label+"/gen1", p, srv2, 3)
			durInsert(t, srv2, 3, 5)
			checkServerEquivalence(t, label+"/gen1-streamed", p, srv2)
			if err := srv2.Close(); err != nil {
				t.Fatalf("close gen1: %v", err)
			}

			srv3, err := p.Serve(ctx, durDataset(), sopt)
			if err != nil {
				t.Fatalf("reopen gen2: %v", err)
			}
			checkRecovered(t, label+"/gen2", p, srv3, 5)
			if err := srv3.Close(); err != nil {
				t.Fatalf("close gen2: %v", err)
			}
		})
	}
}

// TestDurablePartitionedTornWAL tears one shard's log tail: the common
// cut must pull every shard back to the surviving prefix, exactly as in
// the replicated torn-WAL contract — under partitioning a lost owned
// subset makes the whole batch unrecoverable, never a partial one.
func TestDurablePartitionedTornWAL(t *testing.T) {
	p, err := NewPipeline(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	const shards, batches = 2, 4
	for _, damaged := range []int{0, shards - 1} {
		t.Run(fmt.Sprintf("shard%d", damaged), func(t *testing.T) {
			dir := t.TempDir()
			srv, err := durOpenPart(t, p, dir, shards, -1)
			if err != nil {
				t.Fatal(err)
			}
			durInsert(t, srv, 0, batches)
			if err := srv.Close(); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, "wal", fmt.Sprintf("shard-%03d.wal", damaged))
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, raw[:len(raw)-1], 0o644); err != nil {
				t.Fatal(err)
			}
			srv2, err := durOpenPart(t, p, dir, shards, -1)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			checkRecovered(t, "torn", p, srv2, batches-1)
			if err := srv2.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDurableTopologyMismatch: a directory journals for exactly one
// topology (the WAL record formats are incompatible), so reopening
// under the other must be refused by the manifest, in both directions.
func TestDurableTopologyMismatch(t *testing.T) {
	p, err := NewPipeline(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	repDir := durSeedDir(t, p, 2, -1, 1)
	if _, err := durOpenPart(t, p, repDir, 2, -1); err == nil ||
		!strings.Contains(err.Error(), "created as") {
		t.Errorf("replicated dir reopened as partitioned: %v", err)
	}
	partDir := t.TempDir()
	srv, err := durOpenPart(t, p, partDir, 2, -1)
	if err != nil {
		t.Fatal(err)
	}
	durInsert(t, srv, 0, 1)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := durOpen(t, p, partDir, 2, -1); err == nil ||
		!strings.Contains(err.Error(), "created as") {
		t.Errorf("partitioned dir reopened as replicated: %v", err)
	}
}

// TestReassembleOwnedBatches pins the fail-closed reassembly rules on
// hand-crafted per-shard records.
func TestReassembleOwnedBatches(t *testing.T) {
	const n, seed = 2, 0
	rng := stats.NewRNG(7)
	batch := make([]model.Profile, 4)
	for i := range batch {
		batch[i] = synthProfile(rng, fmt.Sprintf("r%d", i))
	}
	encode := func(owns func(int) bool) []byte {
		return wal.AppendOwnedBatch(nil, batch, owns)
	}
	ownedBy := func(sh int) func(int) bool {
		return func(i int) bool { return shard.Owner(int32(seed+i), n) == sh }
	}
	good := [][][]byte{
		{encode(ownedBy(0))},
		{encode(ownedBy(1))},
	}
	out, err := reassembleOwnedBatches(good, 1, seed, n)
	if err != nil {
		t.Fatalf("valid records rejected: %v", err)
	}
	if len(out) != 1 || len(out[0]) != len(batch) {
		t.Fatalf("reassembled %d batches / %d profiles", len(out), len(out[0]))
	}
	for i := range batch {
		if out[0][i].ID != batch[i].ID {
			t.Fatalf("profile %d reassembled as %q, want %q", i, out[0][i].ID, batch[i].ID)
		}
	}

	// Swapped shards: every journaled profile fails the ownership check.
	swapped := [][][]byte{good[1], good[0]}
	if _, err := reassembleOwnedBatches(swapped, 1, seed, n); err == nil {
		t.Error("ownership violation replayed")
	}
	// A shard journaling nothing it owns leaves positions uncovered.
	missing := [][][]byte{
		{encode(ownedBy(0))},
		{encode(func(int) bool { return false })},
	}
	if _, err := reassembleOwnedBatches(missing, 1, seed, n); err == nil {
		t.Error("uncovered batch positions replayed")
	}
	// Disagreeing batch lengths.
	short := wal.AppendOwnedBatch(nil, batch[:3], func(i int) bool { return shard.Owner(int32(seed+i), n) == 1 })
	if _, err := reassembleOwnedBatches([][][]byte{good[0], {short}}, 1, seed, n); err == nil {
		t.Error("diverging batch lengths replayed")
	}
}
