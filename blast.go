// Package blast implements BLAST (Blocking with Loosely-Aware Schema
// Techniques), the holistic loosely schema-aware (meta-)blocking approach
// for Entity Resolution of Simonini, Bergamaschi and Jagadish (PVLDB
// 9(12), 2016).
//
// Given one (dirty ER) or two (clean-clean ER) entity collections, BLAST
// produces a compact list of candidate comparisons in three phases
// (Figure 4 of the paper):
//
//  1. Loose schema information extraction — attribute-match induction
//     (LMI, optionally accelerated with MinHash/LSH banding) partitions
//     attributes by value similarity, and each cluster is scored with the
//     aggregate Shannon entropy of its attributes.
//  2. Loosely schema-aware blocking — Token Blocking with keys
//     disambiguated by attribute cluster, followed by Block Purging and
//     Block Filtering.
//  3. Loosely schema-aware meta-blocking — the blocking graph is weighted
//     with Pearson's chi-squared statistic scaled by the aggregate
//     entropy of the shared keys, then pruned node-centrically with
//     theta_i = M_i/c and the unique edge threshold (theta_u+theta_v)/d.
//
// The package is the stable API surface of this repository; the
// algorithmic building blocks live in internal/ packages (blocking,
// attr, graph, weights, prune, metablocking, ...) and are composed here.
//
// Two entry styles are provided. Run (with the CleanClean and Dirty
// wrappers) executes all three phases in one call. The staged Pipeline
// exposes each phase as a context-aware call returning a reusable
// artifact (Schema, Blocks, Result), and BuildIndex freezes a run into
// an Index serving per-profile candidate queries online; both styles
// produce byte-identical retained pairs.
package blast

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"blast/internal/attr"
	"blast/internal/blocking"
	"blast/internal/graph"
	"blast/internal/metablocking"
	"blast/internal/metrics"
	"blast/internal/model"
	"blast/internal/text"
	"blast/internal/weights"
)

// Induction selects the attribute-match induction algorithm of Phase 1.
type Induction int

const (
	// LMI is Loose attribute-Match Induction (paper Algorithm 1),
	// BLAST's default.
	LMI Induction = iota
	// AC is the Attribute Clustering baseline (Papadakis et al.,
	// TKDE'13), compared in Figure 9.
	AC
	// NoInduction disables Phase 1: schema-agnostic Token Blocking with
	// unit entropies (the "T" rows of Tables 4-5).
	NoInduction
)

// String implements fmt.Stringer.
func (i Induction) String() string {
	switch i {
	case LMI:
		return "lmi"
	case AC:
		return "ac"
	case NoInduction:
		return "none"
	default:
		return fmt.Sprintf("Induction(%d)", int(i))
	}
}

// Compaction tunes when a mutable Index (one that has served Insert
// calls) folds its copy-on-write adjacency overlay back into a flat base
// CSR. Compaction restores pure-array locality for the serving path; the
// overlay amortizes it across many inserts. The zero value selects the
// defaults.
type Compaction struct {
	// MaxOverlayFraction triggers a compaction when the entries held in
	// materialized overlay rows exceed this fraction of the base CSR's
	// entries. 0 selects the default 0.25; a negative value disables
	// automatic compaction entirely (Index.Compact remains available).
	MaxOverlayFraction float64
	// MinOverlayEntries suppresses automatic compaction below this many
	// overlay entries, so small indexes do not compact on every insert.
	// 0 selects the default 4096.
	MinOverlayEntries int
}

// maxFraction resolves the overlay-fraction trigger (0 -> 0.25).
func (c Compaction) maxFraction() float64 {
	if c.MaxOverlayFraction == 0 {
		return 0.25
	}
	return c.MaxOverlayFraction
}

// minEntries resolves the minimum-entry floor (0 -> 4096).
func (c Compaction) minEntries() int {
	if c.MinOverlayEntries == 0 {
		return 4096
	}
	return c.MinOverlayEntries
}

// disabled reports whether automatic compaction is switched off.
func (c Compaction) disabled() bool { return c.MaxOverlayFraction < 0 }

// Storage selects where the blocking graph's adjacency entries live
// while a run or index build is in flight.
type Storage int

const (
	// StorageMemory (the zero value) keeps the full CSR adjacency
	// resident in RAM — the original behavior and the right choice
	// whenever the graph fits.
	StorageMemory Storage = iota
	// StorageFile spills the adjacency to CRC-checked segment files once
	// the build's resident footprint exceeds Options.MemoryBudget,
	// serving subsequent passes through a bounded page cache. Retained
	// pairs and served candidates are byte-identical to StorageMemory;
	// only peak memory (and speed) differ. Requires the NodeCentric
	// engine — the edge-list engine materializes every edge by design.
	StorageFile
)

// String implements fmt.Stringer.
func (s Storage) String() string {
	switch s {
	case StorageMemory:
		return "memory"
	case StorageFile:
		return "file"
	default:
		return fmt.Sprintf("Storage(%d)", int(s))
	}
}

// ParseStorage maps a storage name ("memory", "file" — the String()
// forms) back to the enum value, mirroring ParseTopology.
func ParseStorage(s string) (Storage, error) {
	for _, st := range []Storage{StorageMemory, StorageFile} {
		if s == st.String() {
			return st, nil
		}
	}
	return 0, fmt.Errorf("blast: unknown storage %q: valid names are %q and %q",
		s, StorageMemory, StorageFile)
}

// Validate rejects unknown storage values with a descriptive error.
func (s Storage) Validate() error {
	switch s {
	case StorageMemory, StorageFile:
		return nil
	default:
		return fmt.Errorf("blast: unknown %v: valid storages are StorageMemory (0, resident adjacency) and StorageFile (1, spill past MemoryBudget)", s)
	}
}

// Topology selects how a Server's shards divide the index state.
type Topology int

const (
	// TopologyReplicated (the zero value) gives every shard a full
	// writable index replica: write work and memory grow with the shard
	// count in exchange for read-side parallelism. This is the original
	// Server behavior and the right trade for read-heavy serving.
	TopologyReplicated Topology = iota
	// TopologyPartitioned gives each shard only the adjacency, weights
	// and retention marks of the rows hash-owned by it. Cross-shard edge
	// state (degree vectors, weight-sum partials, histogram cuts, top-k
	// marks) is resolved at publish time by exchanging compact per-shard
	// aggregates in deterministic shard order, so a quiesced partitioned
	// server stays byte-identical to the replicated one. Per-shard
	// graph memory shrinks with the shard count.
	TopologyPartitioned
)

// String implements fmt.Stringer.
func (t Topology) String() string {
	switch t {
	case TopologyReplicated:
		return "replicated"
	case TopologyPartitioned:
		return "partitioned"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// ParseTopology maps a topology name ("replicated", "partitioned" —
// the String() forms) back to the enum value. The flag-parsing
// counterpart of String for cmd/blastserve and friends.
func ParseTopology(s string) (Topology, error) {
	for _, t := range []Topology{TopologyReplicated, TopologyPartitioned} {
		if s == t.String() {
			return t, nil
		}
	}
	return 0, fmt.Errorf("blast: unknown topology %q: valid names are %q and %q",
		s, TopologyReplicated, TopologyPartitioned)
}

// Validate rejects unknown topology values with a descriptive error.
func (t Topology) Validate() error {
	switch t {
	case TopologyReplicated, TopologyPartitioned:
		return nil
	default:
		return fmt.Errorf("blast: unknown %v: valid topologies are TopologyReplicated (0, full replica per shard) and TopologyPartitioned (1, per-shard row ownership)", t)
	}
}

// ServerOptions configures a sharded snapshot-swap Server (see
// Pipeline.Serve). The zero value is valid: one replicated shard,
// default swap cadence.
type ServerOptions struct {
	// Shards is the number of shard workers. Under TopologyReplicated
	// each shard owns a writable Index replica on its write path and
	// serves reads for the profiles hash-sharded to it from an immutable
	// published snapshot; 0 selects 1. Under TopologyPartitioned each
	// shard owns only its rows' graph state. Replication multiplies
	// write work and memory by the shard count in exchange for read-side
	// parallelism; partitioning divides graph memory across shards
	// instead.
	Shards int
	// Topology selects replicated (zero value) or partitioned shards.
	Topology Topology
	// SwapOps publishes a fresh read snapshot after this many streamed
	// profiles have been applied on a shard since its last publication.
	// 0 selects 256; negative disables the op-count trigger, leaving
	// swaps to the overlay trigger (Options.Compaction) and Quiesce.
	SwapOps int

	// Dir, when non-empty, makes the server durable: every admitted
	// InsertAll batch is appended to a per-shard write-ahead log under
	// Dir before ids are returned, published snapshots are persisted on
	// the SnapshotEvery policy, and ServeBlocks on an existing Dir
	// recovers — newest valid snapshot per shard, WAL suffix replayed,
	// torn tails truncated — to a state byte-identical to a cold
	// IndexBlocks over seed + replayed inserts. The seed Blocks artifact
	// is NOT persisted; reopening requires the same artifact (a manifest
	// records its fingerprint and fails closed on mismatch). Empty
	// disables durability entirely.
	Dir string
	// SyncEvery batches WAL fsyncs: one fsync per SyncEvery admitted
	// batches. 0 selects 1 — every admitted batch is on stable storage
	// before its ids are returned; n > 1 trades the tail of a machine
	// crash (not a process crash: writes are unbuffered) for admission
	// throughput; negative never fsyncs explicitly. Requires Dir.
	SyncEvery int
	// SnapshotEvery persists a published snapshot once at least this
	// many batches were admitted since the last persisted one, bounding
	// recovery replay. 0 selects 64; negative disables snapshot
	// persistence (recovery replays the whole WAL). Requires Dir.
	SnapshotEvery int
}

// maxServerShards bounds the shard count: each shard is a full index
// replica, so triple-digit counts are a configuration error long before
// they are a scaling strategy.
const maxServerShards = 256

// Validate checks the server options, mirroring Options.Validate.
func (so ServerOptions) Validate() error {
	if so.Shards < 0 || so.Shards > maxServerShards {
		return fmt.Errorf("blast: Shards = %d outside [0, %d] (0 selects 1; each shard is a full replica)", so.Shards, maxServerShards)
	}
	if err := so.Topology.Validate(); err != nil {
		return err
	}
	if so.Dir == "" && (so.SyncEvery != 0 || so.SnapshotEvery != 0) {
		return fmt.Errorf("blast: SyncEvery/SnapshotEvery = %d/%d without Dir: durability knobs need a durable directory", so.SyncEvery, so.SnapshotEvery)
	}
	return nil
}

// WithDefaults returns a copy of the options with every defaultable
// field resolved to its effective value, so callers (cmd/blastserve,
// tests, docs) read the policy the Server will actually run instead of
// re-deriving the zero-value mappings. Resolution: Shards 0 -> 1;
// SwapOps 0 -> 256; SyncEvery 0 -> 1 and SnapshotEvery 0 -> 64 when Dir
// is set (they are unused otherwise and left alone). Any negative knob
// means "disabled" and normalizes to -1. WithDefaults is idempotent and
// is the single place the defaulting lives; Validate accepts its
// output whenever it accepts the input.
func (so ServerOptions) WithDefaults() ServerOptions {
	if so.Shards == 0 {
		so.Shards = 1
	}
	norm := func(v, def int) int {
		switch {
		case v == 0:
			return def
		case v < 0:
			return -1
		default:
			return v
		}
	}
	so.SwapOps = norm(so.SwapOps, 256)
	if so.Dir != "" {
		so.SyncEvery = norm(so.SyncEvery, 1)
		so.SnapshotEvery = norm(so.SnapshotEvery, 64)
	}
	return so
}

// shards resolves the effective shard count.
func (so ServerOptions) shards() int { return so.WithDefaults().Shards }

// swapOps resolves the effective op-count swap trigger (0 = disabled).
func (so ServerOptions) swapOps() int {
	if v := so.WithDefaults().SwapOps; v > 0 {
		return v
	}
	return 0
}

// walSyncEvery resolves the effective WAL fsync policy (0 = never).
func (so ServerOptions) walSyncEvery() int {
	if v := so.WithDefaults().SyncEvery; v > 0 {
		return v
	}
	return 0
}

// snapshotEvery resolves the effective snapshot persistence cadence in
// batches (0 = disabled).
func (so ServerOptions) snapshotEvery() int64 {
	if v := so.WithDefaults().SnapshotEvery; v > 0 {
		return int64(v)
	}
	return 0
}

// LSHOptions configures the optional MinHash/banding acceleration of
// attribute-match induction (Section 3.1.2). Rows*Bands hash functions
// are used; the implied Jaccard threshold is (1/Bands)^(1/Rows).
type LSHOptions struct {
	Rows  int
	Bands int
	Seed  uint64
}

// Options configures the full pipeline. The zero value is NOT valid; use
// DefaultOptions as the base.
type Options struct {
	// Transform is the value transformation function tau (default:
	// lowercase alphanumeric tokenizer).
	Transform text.Transform

	// Induction selects LMI, AC or no attribute-match induction.
	Induction Induction
	// TFIDF switches attribute comparison from binary/Jaccard to
	// TF-IDF/cosine (Section 2.1's alternative representation).
	TFIDF bool
	// Alpha is the LMI candidate factor (default 0.9).
	Alpha float64
	// Glue keeps unclustered attributes in a glue cluster (default true).
	Glue bool
	// LSH, when non-nil, enables the LSH pre-processing step.
	LSH *LSHOptions

	// PurgeRatio drops blocks containing more than this fraction of all
	// profiles (default 0.5; Block Purging).
	PurgeRatio float64
	// FilterRatio keeps this fraction of each profile's most important
	// blocks (default 0.8; Block Filtering).
	FilterRatio float64

	// Scheme is the edge weighting of the meta-blocking phase (default
	// chi2 * h, the BLAST weighting).
	Scheme weights.Scheme
	// Pruning is the pruning algorithm (default BlastWNP).
	Pruning metablocking.Pruning
	// Engine selects the meta-blocking execution strategy: EdgeList
	// (default) materializes the blocking graph's edge list, NodeCentric
	// streams over a per-node CSR adjacency and keeps peak memory
	// proportional to the adjacency. Retained pairs are identical.
	// Ignored when Supervised is set: the supervised baseline needs
	// per-edge feature vectors and always builds the edge list.
	Engine metablocking.Engine
	// C is the local threshold divisor theta_i = M_i/C (default 2;
	// higher C retains more comparisons — higher PC, lower PQ).
	C float64
	// D combines the two local thresholds: retain iff
	// w >= (theta_u+theta_v)/D (default 2).
	D float64
	// K overrides the cardinality of CEP/CNP pruning (<= 0: defaults).
	K int

	// Supervised switches Phase 3 to supervised meta-blocking (SVM over
	// edge features, trained on TrainFraction of the ground truth). Used
	// only for the paper's comparison rows. Always runs on the edge-list
	// graph; the Engine option does not apply.
	Supervised bool
	// TrainFraction is the fraction of matches used to train the
	// supervised baseline (default 0.1).
	TrainFraction float64
	// Seed drives the deterministic randomness (LSH, SVM sampling).
	Seed uint64
	// Workers parallelizes blocking-graph construction AND the streaming
	// pruning passes (thresholds, top-k marking, retention — everywhere
	// a CSR is pruned: batch runs, IndexBlocks, the incremental index's
	// re-derivations, the sharded server's replicas): 0 uses one worker
	// per CPU, 1 forces serial execution, >1 uses exactly that many
	// goroutines. Results are byte-identical at every count — pruning
	// runs over fixed node chunks with float partials combined in chunk
	// order, so parallelism never moves a ulp. With the default EdgeList
	// engine, 0 only engages build parallelism on collections large
	// enough for the sharded builder to pay off (see
	// metablocking.Config.Workers); explicit counts are always honored.
	// Like Engine, ignored when Supervised is set (the supervised
	// baseline always builds its graph serially).
	Workers int

	// Storage selects where the blocking graph's adjacency lives during
	// meta-blocking and index builds: StorageMemory (default) keeps it
	// resident, StorageFile spills it to segment files past MemoryBudget
	// and serves passes through a bounded page cache. Byte-identical
	// output either way. StorageFile requires the NodeCentric engine and
	// does not apply to Supervised runs.
	Storage Storage
	// MemoryBudget bounds (in bytes) the resident footprint of the
	// adjacency entries a StorageFile build may accumulate before
	// spilling: <= 0 spills from the first entry, and a budget larger
	// than the graph never spills at all (the build simply stays
	// resident). The budget covers the adjacency entry streams only —
	// offsets, block counts and the fixed pipeline state are O(profiles)
	// and excluded. Ignored under StorageMemory.
	MemoryBudget int64
	// SpillDir is the directory StorageFile segment files are created
	// under (a fresh subdirectory per build, removed when the graph is
	// closed). Empty selects the OS temp dir — or, on a durable Server,
	// a "spill" directory next to the WAL so segments live on the same
	// filesystem as the rest of the state. Ignored under StorageMemory.
	SpillDir string

	// Compaction tunes the overlay-compaction policy of a mutable Index
	// (see Index.Insert). The zero value selects the defaults; it is
	// ignored by the batch pipeline.
	Compaction Compaction

	// Progress, when non-nil, observes pipeline execution: it is invoked
	// synchronously as each phase or sub-stage completes ("induce",
	// "block", "graph", "weight", "prune", "supervised", "index") with
	// the stage's wall-clock duration. It must be fast and must not
	// retain pipeline structures.
	Progress Progress
}

// Progress observes pipeline execution. See Options.Progress.
type Progress func(phase string, d time.Duration)

// Validate checks the option values that the pipeline cannot interpret,
// returning a descriptive error for the first violation found. It is
// called by NewPipeline and Run; DefaultOptions always validates.
func (o Options) Validate() error {
	switch o.Induction {
	case LMI, AC, NoInduction:
	default:
		return fmt.Errorf("blast: unknown induction %d", int(o.Induction))
	}
	if o.Induction != NoInduction {
		// Alpha and LSH only drive attribute-match induction; like
		// TrainFraction below, they are checked only when used.
		if o.Alpha <= 0 || o.Alpha > 1 {
			return fmt.Errorf("blast: Alpha = %v outside (0, 1]: the LMI candidate factor is a fraction of the per-attribute best similarity", o.Alpha)
		}
		if o.LSH != nil && (o.LSH.Rows < 1 || o.LSH.Bands < 1) {
			return fmt.Errorf("blast: LSH rows/bands = %d/%d: both must be >= 1", o.LSH.Rows, o.LSH.Bands)
		}
	}
	if o.PurgeRatio <= 0 || o.PurgeRatio > 1 {
		return fmt.Errorf("blast: PurgeRatio = %v outside (0, 1]: it is the maximum fraction of all profiles a block may hold (1 disables purging)", o.PurgeRatio)
	}
	if o.FilterRatio <= 0 || o.FilterRatio > 1 {
		return fmt.Errorf("blast: FilterRatio = %v outside (0, 1]: it is the fraction of each profile's blocks to keep (1 disables filtering)", o.FilterRatio)
	}
	switch o.Pruning {
	case metablocking.WEP, metablocking.CEP, metablocking.WNP1, metablocking.WNP2,
		metablocking.CNP1, metablocking.CNP2, metablocking.BlastWNP:
	default:
		return fmt.Errorf("blast: unknown pruning %d", int(o.Pruning))
	}
	switch o.Engine {
	case metablocking.EdgeList, metablocking.NodeCentric:
	default:
		return fmt.Errorf("blast: unknown engine %d", int(o.Engine))
	}
	if o.C <= 0 {
		return fmt.Errorf("blast: C = %v must be > 0: it divides the per-node maximum weight (theta_i = M_i/C)", o.C)
	}
	if o.D <= 0 {
		return fmt.Errorf("blast: D = %v must be > 0: it divides the combined threshold (theta_u+theta_v)/D", o.D)
	}
	if o.K < -1 {
		return fmt.Errorf("blast: K = %d must be >= -1 (<= 0 selects the scheme defaults)", o.K)
	}
	if o.Workers < 0 {
		return fmt.Errorf("blast: Workers = %d must be >= 0 (0 selects one worker per CPU)", o.Workers)
	}
	if err := o.Storage.Validate(); err != nil {
		return err
	}
	if o.Storage == StorageFile {
		if o.Engine != metablocking.NodeCentric {
			return fmt.Errorf("blast: StorageFile requires the NodeCentric engine: the edge-list engine materializes every edge in memory by design")
		}
		if o.Supervised {
			return fmt.Errorf("blast: StorageFile does not apply to Supervised runs: the supervised baseline needs a resident per-edge feature matrix")
		}
	} else if o.MemoryBudget != 0 || o.SpillDir != "" {
		return fmt.Errorf("blast: MemoryBudget/SpillDir = %d/%q without StorageFile: the spill knobs need file storage", o.MemoryBudget, o.SpillDir)
	}
	if math.IsNaN(o.Compaction.MaxOverlayFraction) || math.IsInf(o.Compaction.MaxOverlayFraction, 0) {
		return fmt.Errorf("blast: Compaction.MaxOverlayFraction = %v must be finite (0 selects the default, negative disables)", o.Compaction.MaxOverlayFraction)
	}
	if o.Compaction.MinOverlayEntries < 0 {
		return fmt.Errorf("blast: Compaction.MinOverlayEntries = %d must be >= 0 (0 selects the default)", o.Compaction.MinOverlayEntries)
	}
	if o.Supervised && (o.TrainFraction <= 0 || o.TrainFraction > 1) {
		return fmt.Errorf("blast: TrainFraction = %v outside (0, 1]: it is the fraction of ground-truth matches used for training", o.TrainFraction)
	}
	return nil
}

// spillOptions maps the public storage knobs onto the graph builder's
// spill configuration, nil when storage is resident. dir, when
// non-empty, overrides an unset SpillDir (the durable Server points it
// next to the WAL).
func (o *Options) spillOptions(dir string) *graph.SpillOptions {
	if o.Storage != StorageFile {
		return nil
	}
	d := o.SpillDir
	if d == "" {
		d = dir
	}
	return &graph.SpillOptions{Dir: d, MemoryBudget: o.MemoryBudget}
}

// progress reports a completed phase to the Progress observer, if any.
func (o *Options) progress(phase string, d time.Duration) {
	if o.Progress != nil {
		o.Progress(phase, d)
	}
}

// DefaultOptions returns the paper's configuration of BLAST.
func DefaultOptions() Options {
	return Options{
		Transform:     text.NewTokenizer(),
		Induction:     LMI,
		Alpha:         0.9,
		Glue:          true,
		PurgeRatio:    0.5,
		FilterRatio:   0.8,
		Scheme:        weights.Blast(),
		Pruning:       metablocking.BlastWNP,
		C:             2,
		D:             2,
		TrainFraction: 0.1,
		Seed:          1,
	}
}

// Result is the outcome of a pipeline run.
type Result struct {
	// Pairs is the restructured block collection: one comparison per
	// retained edge, in canonical order.
	Pairs []model.IDPair
	// Partitioning is the loose schema information of Phase 1 (nil when
	// induction is disabled).
	Partitioning *attr.Partitioning
	// Blocks is the cleaned block collection Phase 3 consumed.
	Blocks *blocking.Collection
	// Quality measures Pairs against the dataset's ground truth (zero
	// when the dataset has no truth).
	Quality metrics.Quality
	// BlockQuality measures Blocks before meta-blocking (the Table 3
	// baseline view).
	BlockQuality metrics.Quality

	// InductionTime, BlockTime and MetaTime decompose the overhead.
	InductionTime time.Duration
	BlockTime     time.Duration
	MetaTime      time.Duration
}

// Overhead is the total pipeline overhead t_o.
func (r *Result) Overhead() time.Duration {
	return r.InductionTime + r.BlockTime + r.MetaTime
}

// RestructuredBlocks materializes the meta-blocking output in block form:
// each retained comparison becomes a block of two profiles (the paper's
// "each pair of nodes connected by an edge forms a new block"). Useful
// for feeding downstream tools that consume block collections.
func (r *Result) RestructuredBlocks() *blocking.Collection {
	out := &blocking.Collection{
		Kind:        r.Blocks.Kind,
		NumProfiles: r.Blocks.NumProfiles,
		Split:       r.Blocks.Split,
	}
	out.Blocks = make([]blocking.Block, 0, len(r.Pairs))
	for i, p := range r.Pairs {
		b := blocking.Block{Key: mbKey(i), Entropy: 1}
		if out.Kind == model.CleanClean {
			b.P1 = []int32{p.U}
			b.P2 = []int32{p.V}
		} else {
			b.P1 = []int32{p.U, p.V}
		}
		out.Blocks = append(out.Blocks, b)
	}
	return out
}

// mbKey renders the restructured-block key "mb-%08d" without going
// through fmt: one string allocation per key instead of Sprintf's
// argument boxing and formatter state, which dominates the restructuring
// loop on large outputs (see BenchmarkRestructuredKey).
func mbKey(i int) string {
	var digits [20]byte
	d := strconv.AppendInt(digits[:0], int64(i), 10)
	buf := make([]byte, 0, 3+8)
	buf = append(buf, "mb-"...)
	for pad := 8 - len(d); pad > 0; pad-- {
		buf = append(buf, '0')
	}
	buf = append(buf, d...)
	return string(buf)
}

// LooseSchemaReport renders the discovered attribute partitioning as a
// human-readable listing (one cluster per line with its aggregate
// entropy), or a note when induction was disabled.
func (r *Result) LooseSchemaReport() string {
	if r.Partitioning == nil {
		return "no attribute-match induction (schema-agnostic run)\n"
	}
	var b strings.Builder
	for _, c := range r.Partitioning.Clusters {
		if len(c.Members) == 0 {
			continue
		}
		label := fmt.Sprintf("cluster %d", c.ID)
		if c.ID == attr.GlueClusterID {
			label = "glue"
		}
		fmt.Fprintf(&b, "%-10s H=%.3f ", label, c.Entropy)
		for i, m := range c.Members {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "E%d/%s", m.Source+1, m.Name)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Run executes the BLAST pipeline on a dataset. It is a thin wrapper
// over the staged Pipeline API — NewPipeline followed by Pipeline.Run
// under the background context — and produces byte-identical Pairs.
// Use a Pipeline directly to reuse phase artifacts (one *Schema across a
// parameter sweep), cancel long runs, or serve per-profile candidate
// queries through an Index.
func Run(ds *model.Dataset, opt Options) (*Result, error) {
	p, err := NewPipeline(opt)
	if err != nil {
		return nil, err
	}
	return p.Run(context.Background(), ds)
}

// CleanClean is a convenience wrapper building the dataset from two
// collections and running the default pipeline. truth may be nil (no
// quality is computed then).
func CleanClean(e1, e2 *model.Collection, truth *model.GroundTruth, opt Options) (*Result, error) {
	if truth == nil {
		truth = model.NewGroundTruth()
	}
	ds := &model.Dataset{Name: "clean-clean", Kind: model.CleanClean, E1: e1, E2: e2, Truth: truth}
	return Run(ds, opt)
}

// Dirty is the single-collection counterpart of CleanClean.
func Dirty(e *model.Collection, truth *model.GroundTruth, opt Options) (*Result, error) {
	if truth == nil {
		truth = model.NewGroundTruth()
	}
	ds := &model.Dataset{Name: "dirty", Kind: model.Dirty, E1: e, Truth: truth}
	return Run(ds, opt)
}
