package blast

// The partitioned topology's shard writer. Where the replicated
// topology gives every shard a full Index — the whole adjacency,
// rebuilt decision state, O(replicas × graph) memory — a partIndex owns
// only the rows that hash onto its shard: it holds the (compact, fully
// replicated) block collection plus an appender, and materializes
// nothing else between exports. An export builds the owned-rows CSR
// from the collection and resolves every graph-global pruning input by
// an all-gather of compact per-shard aggregates over the server's
// shard.Exchange:
//
//	round 0    owned degree vectors      → global degrees, edge count
//	WEP        per-row weight sums       → the exact global mean
//	CEP        counting histograms       → the exact global cut
//	           (+ per-row tie counts and the taken-tie pair set when
//	            the budget splits a tie group)
//	WNP/Blast  owned threshold rows      → the global theta vector
//	CNP        owned top-k mark lists    → the global mark lists
//	final      owned mark counts        → the global retained count
//
// Every aggregate merges either by ownership scatter (per-row values:
// each row has exactly one owner, so merged[u] = frames[owner(u)][u] —
// never an element-wise sum, which could disturb IEEE signed zeros) or
// by a commutative fold in fixed shard order (histograms). Every branch
// a shard takes between rounds — edge-count zero, budget resolution,
// the tie-budget case split — depends only on globally merged values,
// so all shards run the identical round sequence and the exchange's
// call-index round matching never misaligns.
//
// The correctness contract matches the replicated one bit for bit: a
// row's run in a partitioned snapshot is byte-identical to the same row
// of a replicated export at the same batch count, because the refolds
// above reproduce the exact reduction shapes (chunk order, row order,
// adjacency order) of the single-graph streaming schemes.

import (
	"context"
	"fmt"
	"slices"

	"blast/internal/blocking"
	"blast/internal/graph"
	"blast/internal/metablocking"
	"blast/internal/model"
	"blast/internal/prune"
	"blast/internal/shard"
)

// partIndex is the Writer behind one shard of a partitioned Server.
// The shard worker serializes all calls, so it needs no lock of its
// own.
type partIndex struct {
	part   int
	nparts int
	kind   model.Kind
	schema *Schema
	opt    Options
	app    *blocking.Appender
	ex     *shard.Exchange
}

// newPartIndex wraps one shard's clone of the block collection. The
// clone is owned by the partIndex from here on.
func newPartIndex(c *blocking.Collection, schema *Schema, opt Options, part, nparts int, ex *shard.Exchange) *partIndex {
	return &partIndex{
		part:   part,
		nparts: nparts,
		kind:   c.Kind,
		schema: schema,
		opt:    opt,
		app:    blocking.NewAppender(c),
		ex:     ex,
	}
}

// owns is the row-ownership predicate of this shard.
func (px *partIndex) owns(p int32) bool {
	return shard.Owner(p, px.nparts) == px.part
}

// InsertAll tokenizes and appends a batch to the shard's collection.
// Unlike Index.InsertAll there is no decision state to fold the batch
// into — ownership resolution happens wholesale at the next Export —
// so admission cannot fail mid-batch: tokenization is total and the
// append is unconditional. Every shard of the server admits every
// batch (the collection is replicated; only adjacency is partitioned),
// which is what keeps the appenders' id assignment aligned.
func (px *partIndex) InsertAll(ctx context.Context, profiles []model.Profile) ([]int, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	keys := make([][]blocking.KeyEntropy, len(profiles))
	for i := range profiles {
		keys[i] = tokenizeProfile(px.schema, px.kind, &px.opt, &profiles[i])
	}
	ids := make([]int, len(profiles))
	for i := range keys {
		ids[i] = int(px.app.Append(keys[i]).ID)
	}
	return ids, nil
}

// OverlayStats reports no overlay: a partIndex carries no incremental
// graph state, so the server's overlay-triggered swap policy never
// fires for partitioned shards (their compaction cadence is purely
// SwapOps-driven, identically on every shard).
func (px *partIndex) OverlayStats() (int, float64) { return 0, 0 }

// Export builds this shard's owned-rows snapshot at the current
// collection state, running the aggregate-exchange rounds described in
// the package comment. All participating shards must export
// concurrently from identical collection states; the server guarantees
// both (batches are enqueued to all shards atomically, and swaps are
// SwapOps-aligned).
func (px *partIndex) Export(ctx context.Context) (*shard.Snapshot, error) {
	c := px.app.Collection()
	np := c.NumProfiles
	g, err := graph.BuildOwnedCSR(ctx, c, px.owns, px.opt.Workers)
	if err != nil {
		return nil, err
	}
	owners := ownerTable(np, px.nparts)

	// Round 0: owned degree vectors. An owned row's run is its node's
	// complete adjacency, so run lengths are the global degrees and
	// their sum counts every edge endpoint exactly once per side.
	degrees := make([]int32, np)
	for u := 0; u < np; u++ {
		degrees[u] = int32(g.Offsets[u+1] - g.Offsets[u])
	}
	var w shard.FrameWriter
	w.Int32s(degrees)
	if err := px.gatherInt32Scatter(&w, owners, degrees); err != nil {
		return nil, err
	}
	ne := int64(0)
	for _, d := range degrees {
		ne += int64(d)
	}
	numEdges := int(ne / 2)

	px.opt.Scheme.ApplyOwnedCSR(g, degrees, numEdges)
	g.ReleaseStats()

	keep, theta, err := px.keepPredicate(ctx, g, numEdges, owners)
	if err != nil {
		return nil, err
	}

	var retained []bool
	marks := int64(0)
	if keep == nil {
		retained = make([]bool, len(g.Neighbors))
	} else {
		retained, marks, err = prune.MarkOwned(ctx, g, px.opt.Workers, keep)
		if err != nil {
			return nil, err
		}
	}

	// Final round: owned mark counts. Each retained edge is marked once
	// by the owner of each endpoint — twice in the global sum, whoever
	// the owners are — so the exchanged total over two is the global
	// retained-pair count.
	var mw shard.FrameWriter
	mw.Int64s([]int64{marks})
	mfs, err := px.gather(&mw)
	if err != nil {
		return nil, err
	}
	total := int64(0)
	for _, r := range mfs {
		v := r.Int64s()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if len(v) != 1 {
			return nil, fmt.Errorf("blast: malformed marks frame (%d values)", len(v))
		}
		total += v[0]
	}

	return &shard.Snapshot{
		NumProfiles:   np,
		NumEdges:      numEdges,
		RetainedPairs: int(total / 2),
		Offsets:       g.Offsets,
		Neighbors:     g.Neighbors,
		Weights:       g.Weights,
		Retained:      retained,
		Theta:         theta,
		PartShards:    px.nparts,
		PartShard:     px.part,
	}, nil
}

// keepPredicate resolves the pruning scheme's global inputs through the
// exchange and returns the per-entry retention predicate (nil when the
// scheme retains nothing at this state) plus the global per-node
// threshold vector for the schemes that expose one. Every branch below
// tests only globally merged values, keeping the round sequence
// identical across shards.
func (px *partIndex) keepPredicate(ctx context.Context, g *graph.CSR, numEdges int, owners []uint8) (func(u, v int32, w float64) bool, []float64, error) {
	opt := &px.opt
	switch opt.Pruning {
	case metablocking.WEP:
		if numEdges == 0 {
			return nil, nil, nil
		}
		sums, counts, err := prune.RowWeightSums(ctx, g, opt.Workers)
		if err != nil {
			return nil, nil, err
		}
		var w shard.FrameWriter
		w.Float64s(sums)
		w.Int64s(counts)
		rs, err := px.gather(&w)
		if err != nil {
			return nil, nil, err
		}
		gsums := make([]float64, g.NumProfiles)
		gcounts := make([]int64, g.NumProfiles)
		for i, r := range rs {
			s, c := r.Float64s(), r.Int64s()
			if err := px.checkFrame(r, len(s) == g.NumProfiles && len(c) == g.NumProfiles); err != nil {
				return nil, nil, err
			}
			// Ownership scatter: a row's value comes from its one owner,
			// never an element-wise sum (which could disturb IEEE signed
			// zeros).
			for u := range s {
				if int(owners[u]) == i {
					gsums[u], gcounts[u] = s[u], c[u]
				}
			}
		}
		total, _ := prune.FoldRowSums(gsums, gcounts)
		theta := total / float64(numEdges)
		return func(_, _ int32, w float64) bool { return w >= theta }, nil, nil

	case metablocking.CEP:
		if numEdges == 0 {
			return nil, nil, nil
		}
		k := opt.K
		if k <= 0 {
			k = prune.CEPBudget(g.BlockCounts)
		}
		if k > numEdges {
			k = numEdges
		}
		if k <= 0 {
			return nil, nil, nil
		}
		cut, greater, ties, err := px.selectCutExchanged(ctx, g, k)
		if err != nil {
			return nil, nil, err
		}
		rem := int64(k - greater)
		if rem >= int64(ties) {
			return func(_, _ int32, w float64) bool { return w >= cut }, nil, nil
		}
		if rem <= 0 {
			return func(_, _ int32, w float64) bool { return w > cut }, nil, nil
		}
		taken, err := px.takenTiesExchanged(ctx, g, cut, rem, owners)
		if err != nil {
			return nil, nil, err
		}
		return func(u, v int32, w float64) bool {
			if w > cut {
				return true
			}
			if w != cut {
				return false
			}
			lo, hi := u, v
			if hi < lo {
				lo, hi = hi, lo
			}
			_, ok := slices.BinarySearchFunc(taken, model.IDPair{U: lo, V: hi}, comparePairs)
			return ok
		}, nil, nil

	case metablocking.WNP1, metablocking.WNP2:
		th, err := prune.MeanThresholds(ctx, g, opt.Workers)
		if err != nil {
			return nil, nil, err
		}
		gth, err := px.exchangeThresholds(th, owners)
		if err != nil {
			return nil, nil, err
		}
		redefined := opt.Pruning == metablocking.WNP1
		return func(u, v int32, w float64) bool {
			overU, overV := w >= gth[u], w >= gth[v]
			if redefined {
				return overU || overV
			}
			return overU && overV
		}, gth, nil

	case metablocking.BlastWNP:
		th, err := prune.BlastThresholds(ctx, g, opt.C, opt.Workers)
		if err != nil {
			return nil, nil, err
		}
		gth, err := px.exchangeThresholds(th, owners)
		if err != nil {
			return nil, nil, err
		}
		d := opt.D
		if d <= 0 {
			d = 2
		}
		return func(u, v int32, w float64) bool {
			return w >= (gth[u]+gth[v])/d
		}, gth, nil

	case metablocking.CNP1, metablocking.CNP2:
		if numEdges == 0 {
			return nil, nil, nil
		}
		k := opt.K
		if k <= 0 {
			k = prune.CNPBudget(g.BlockCounts)
		}
		if k == 0 {
			return nil, nil, nil
		}
		offsets, ids, err := prune.RowTopKMarks(ctx, g, k, opt.Workers)
		if err != nil {
			return nil, nil, err
		}
		var w shard.FrameWriter
		w.Int64s(offsets)
		w.Int32s(ids)
		rs, err := px.gather(&w)
		if err != nil {
			return nil, nil, err
		}
		goff, gids, err := px.mergeTopKMarks(rs, g.NumProfiles, owners)
		if err != nil {
			return nil, nil, err
		}
		marked := func(u, v int32) bool {
			lo, hi := goff[u], goff[u+1]
			_, ok := slices.BinarySearch(gids[lo:hi], v)
			return ok
		}
		redefined := opt.Pruning == metablocking.CNP1
		return func(u, v int32, _ float64) bool {
			mu, mv := marked(u, v), marked(v, u)
			if redefined {
				return mu || mv
			}
			return mu && mv
		}, nil, nil

	default:
		return nil, nil, fmt.Errorf("blast: unknown pruning %d", int(opt.Pruning))
	}
}

// selectCutExchanged drives the CutScan refinement with shard-merged
// counting histograms: each round, every shard counts its owned rows at
// the scan's prefix/shift, the histograms fold in shard order, and one
// Step advances — at most four rounds, exactly like the local
// selection.
func (px *partIndex) selectCutExchanged(ctx context.Context, g *graph.CSR, k int) (cut float64, greater, ties int, err error) {
	cs := prune.NewCutScan(k)
	for {
		counts, kmin, kmax, err := prune.CountCutHist(ctx, g, px.opt.Workers, cs.Prefix(), cs.Shift())
		if err != nil {
			return 0, 0, 0, err
		}
		var w shard.FrameWriter
		w.Int64s(counts)
		w.Uint64s(kmin)
		w.Uint64s(kmax)
		rs, err := px.gather(&w)
		if err != nil {
			return 0, 0, 0, err
		}
		mc, mmin, mmax := prune.NewCutHist()
		for _, r := range rs {
			oc, omin, omax := r.Int64s(), r.Uint64s(), r.Uint64s()
			if err := px.checkFrame(r, len(oc) == len(mc) && len(omin) == len(mmin) && len(omax) == len(mmax)); err != nil {
				return 0, 0, 0, err
			}
			prune.MergeCutHist(mc, mmin, mmax, oc, omin, omax)
		}
		if cs.Step(mc, mmin, mmax) {
			cut, greater, ties = cs.Cut()
			return cut, greater, ties, nil
		}
	}
}

// takenTiesExchanged resolves CEP's partial tie budget: per-row tie
// counts are exchanged and prefix-summed into global tie ordinals, each
// shard collects its owned rows' within-budget ties, and the disjoint
// per-shard sets merge into THE global taken-tie set every owner marks
// against.
func (px *partIndex) takenTiesExchanged(ctx context.Context, g *graph.CSR, cut float64, rem int64, owners []uint8) ([]model.IDPair, error) {
	ties, err := prune.RowTieCounts(ctx, g, px.opt.Workers, cut)
	if err != nil {
		return nil, err
	}
	var w shard.FrameWriter
	w.Int64s(ties)
	rs, err := px.gather(&w)
	if err != nil {
		return nil, err
	}
	gties := make([]int64, g.NumProfiles)
	for i, r := range rs {
		v := r.Int64s()
		if err := px.checkFrame(r, len(v) == g.NumProfiles); err != nil {
			return nil, err
		}
		for u := range v {
			if int(owners[u]) == i {
				gties[u] = v[u]
			}
		}
	}
	// tieBase[u]: the global ordinal of row u's first tie.
	tieBase := make([]int64, g.NumProfiles)
	base := int64(0)
	for u, n := range gties {
		tieBase[u] = base
		base += n
	}
	own, err := prune.CEPTakenTies(ctx, g, px.opt.Workers, cut, rem, tieBase)
	if err != nil {
		return nil, err
	}
	var tw shard.FrameWriter
	tw.Pairs(own)
	trs, err := px.gather(&tw)
	if err != nil {
		return nil, err
	}
	parts := make([][]model.IDPair, len(trs))
	for i, r := range trs {
		parts[i] = r.Pairs()
		if err := r.Err(); err != nil {
			return nil, err
		}
	}
	return shard.MergePairs(parts), nil
}

// exchangeThresholds all-gathers owned per-node threshold rows and
// scatters them by ownership into the global vector.
func (px *partIndex) exchangeThresholds(th []float64, owners []uint8) ([]float64, error) {
	var w shard.FrameWriter
	w.Float64s(th)
	rs, err := px.gather(&w)
	if err != nil {
		return nil, err
	}
	gth := make([]float64, len(th))
	for i, r := range rs {
		v := r.Float64s()
		if err := px.checkFrame(r, len(v) == len(th)); err != nil {
			return nil, err
		}
		for u := range v {
			if int(owners[u]) == i {
				gth[u] = v[u]
			}
		}
	}
	return gth, nil
}

// mergeTopKMarks scatters per-shard owned top-k mark lists into the
// global per-row list table.
func (px *partIndex) mergeTopKMarks(rs []*shard.FrameReader, np int, owners []uint8) ([]int64, []int32, error) {
	offs := make([][]int64, len(rs))
	idss := make([][]int32, len(rs))
	for i, r := range rs {
		offs[i] = r.Int64s()
		idss[i] = r.Int32s()
		if err := px.checkFrame(r, len(offs[i]) == np+1); err != nil {
			return nil, nil, err
		}
	}
	goff := make([]int64, np+1)
	for u := 0; u < np; u++ {
		o := offs[owners[u]]
		goff[u+1] = goff[u] + (o[u+1] - o[u])
	}
	gids := make([]int32, goff[np])
	for u := 0; u < np; u++ {
		s := owners[u]
		copy(gids[goff[u]:goff[u+1]], idss[s][offs[s][u]:offs[s][u+1]])
	}
	return goff, gids, nil
}

// gather runs one exchange round: contribute this shard's frame, wait
// for all peers, wrap every frame in a reader.
func (px *partIndex) gather(w *shard.FrameWriter) ([]*shard.FrameReader, error) {
	frames, err := px.ex.Gather(px.part, w.Bytes())
	if err != nil {
		return nil, err
	}
	rs := make([]*shard.FrameReader, len(frames))
	for i, f := range frames {
		rs[i] = shard.NewFrameReader(f)
	}
	return rs, nil
}

// gatherInt32Scatter runs the degree round: exchange the owned degree
// vector and scatter the peers' owned rows into it in place.
func (px *partIndex) gatherInt32Scatter(w *shard.FrameWriter, owners []uint8, dst []int32) error {
	rs, err := px.gather(w)
	if err != nil {
		return err
	}
	for i, r := range rs {
		v := r.Int32s()
		if err := px.checkFrame(r, len(v) == len(dst)); err != nil {
			return err
		}
		if i == px.part {
			continue
		}
		for u := range v {
			if int(owners[u]) == i {
				dst[u] = v[u]
			}
		}
	}
	return nil
}

// checkFrame folds a reader's sticky decode error together with a
// structural expectation into one failure.
func (px *partIndex) checkFrame(r *shard.FrameReader, ok bool) error {
	if err := r.Err(); err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("blast: misshapen exchange frame on shard %d", px.part)
	}
	return nil
}

// ownerTable precomputes profile → owning shard (shard counts are
// capped at 256, so a byte suffices).
func ownerTable(np, nparts int) []uint8 {
	t := make([]uint8, np)
	for u := range t {
		t[u] = uint8(shard.Owner(int32(u), nparts))
	}
	return t
}

// comparePairs orders pairs canonically for the tie-set binary search.
func comparePairs(a, b model.IDPair) int {
	switch {
	case a.U < b.U:
		return -1
	case a.U > b.U:
		return 1
	case a.V < b.V:
		return -1
	case a.V > b.V:
		return 1
	default:
		return 0
	}
}
