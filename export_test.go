package blast

// Test-only exports bridging the external test package (blast_test) to
// unexported internals.

// MBKeyForBench exposes mbKey to the benchmark suite.
func MBKeyForBench(i int) string { return mbKey(i) }
