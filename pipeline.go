package blast

// The staged pipeline API. The paper's three-phase decomposition
// (Figure 4) is exposed as three explicit phases whose outputs are
// first-class, reusable artifacts:
//
//	InduceSchema(ctx, ds)          -> *Schema   (loose schema information)
//	Block(ctx, ds, schema)         -> *Blocks   (cleaned block collection)
//	MetaBlock(ctx, blocks)         -> *Result   (retained comparisons)
//	BuildIndex(ctx, ds)            -> *Index    (online candidate serving)
//	Serve(ctx, ds, sopt)           -> *Server   (sharded snapshot-swap serving)
//
// Artifacts decouple the phases: one *Schema can feed many Block calls,
// one *Blocks can feed many MetaBlock calls with different weighting and
// pruning settings (a C/D parameter sweep re-runs only Phase 3), and an
// *Index freezes the weighted, pruned blocking graph into a per-profile
// candidate-serving structure that additionally accepts incremental
// profile insertions (Index.Insert) without a rebuild. ServeBlocks (the
// blocks-level hook behind Serve, in server.go) lifts one *Blocks
// artifact into hash-sharded snapshot-swap replicas for read-heavy
// traffic. Every phase honors context cancellation at phase and
// worker-chunk granularity and reports completion to the optional
// Options.Progress observer.

import (
	"context"
	"errors"
	"time"

	"blast/internal/attr"
	"blast/internal/blocking"
	"blast/internal/graph"
	"blast/internal/metablocking"
	"blast/internal/metrics"
	"blast/internal/model"
	"blast/internal/supervised"
	"blast/internal/text"
)

// Pipeline executes the BLAST phases under one validated configuration.
// It is immutable and safe for concurrent use; per-call state lives in
// the artifacts. The zero value is not usable — construct with
// NewPipeline.
type Pipeline struct {
	opt Options
}

// NewPipeline validates the options and returns a pipeline over them. A
// nil Transform defaults to the standard tokenizer before validation.
func NewPipeline(opt Options) (*Pipeline, error) {
	if opt.Transform == nil {
		opt.Transform = text.NewTokenizer()
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	return &Pipeline{opt: opt}, nil
}

// Options returns the pipeline's (defaulted, validated) configuration.
func (p *Pipeline) Options() Options { return p.opt }

// Schema is the Phase 1 artifact: the loose schema information extracted
// by attribute-match induction. It is independent of every Phase 2/3
// setting, so one Schema can be reused across blocking and meta-blocking
// parameter sweeps of the same dataset.
type Schema struct {
	// Partitioning is the attribute partitioning with aggregate cluster
	// entropies; nil when induction is disabled (schema-agnostic run).
	Partitioning *attr.Partitioning
	// Induction records the algorithm that produced the schema.
	Induction Induction
	// Duration is the wall-clock time of the induction phase.
	Duration time.Duration
}

// keyFunc returns the blocking key function the schema implies:
// cluster-qualified tokens, or plain Token Blocking for a nil schema or
// disabled induction.
func (s *Schema) keyFunc() blocking.KeyFunc {
	if s == nil || s.Partitioning == nil {
		return blocking.TokenKey
	}
	return s.Partitioning.KeyFunc()
}

// Blocks is the Phase 2 artifact: the purged and filtered block
// collection, together with the references MetaBlock needs to assemble a
// full Result (the schema the keys were derived from and the dataset
// whose ground truth scores the output).
type Blocks struct {
	// Collection is the cleaned block collection.
	Collection *blocking.Collection
	// Schema is the Phase 1 artifact the blocks were keyed under; nil
	// for a schema-agnostic run.
	Schema *Schema
	// Dataset is the input the blocks were built from.
	Dataset *model.Dataset
	// Duration is the wall-clock time of the blocking phase (build,
	// purge and filter).
	Duration time.Duration
}

// InduceSchema runs Phase 1 (loose schema information extraction) on the
// dataset: attribute-match induction partitions attributes by value
// similarity and scores each cluster with its aggregate entropy. With
// Induction == NoInduction the returned schema is empty (nil
// Partitioning) and downstream blocking is schema-agnostic.
func (p *Pipeline) InduceSchema(ctx context.Context, ds *model.Dataset) (*Schema, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t0 := time.Now()
	sch := &Schema{Induction: p.opt.Induction}
	if p.opt.Induction != NoInduction {
		profiles := attr.ExtractProfiles(ds, p.opt.Transform)
		cfg := attr.Config{Alpha: p.opt.Alpha, Glue: p.opt.Glue}
		if p.opt.TFIDF {
			cfg.Representation = attr.TFIDF
		}
		if p.opt.LSH != nil {
			cfg.LSH = &attr.LSHConfig{Rows: p.opt.LSH.Rows, Bands: p.opt.LSH.Bands, Seed: p.opt.LSH.Seed ^ p.opt.Seed}
		}
		var part *attr.Partitioning
		var err error
		if p.opt.Induction == LMI {
			part, err = attr.LMICtx(ctx, profiles, ds.Kind, cfg)
		} else {
			part, err = attr.ACCtx(ctx, profiles, ds.Kind, cfg)
		}
		if err != nil {
			return nil, err
		}
		sch.Partitioning = part
	}
	sch.Duration = time.Since(t0)
	p.opt.progress("induce", sch.Duration)
	return sch, nil
}

// Block runs Phase 2 (loosely schema-aware blocking) on the dataset
// under a schema: Token Blocking with schema-disambiguated keys,
// followed by Block Purging and Block Filtering. schema may come from
// any pipeline (that is the point of artifact reuse) or be nil for a
// schema-agnostic run; the schema, not this pipeline's Induction
// setting, decides the keys.
func (p *Pipeline) Block(ctx context.Context, ds *model.Dataset, schema *Schema) (*Blocks, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	t0 := time.Now()
	raw, err := blocking.BuildCtx(ctx, ds, p.opt.Transform, schema.keyFunc())
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cleaned := blocking.CleanWorkflow(raw, p.opt.PurgeRatio, p.opt.FilterRatio)
	b := &Blocks{
		Collection: cleaned,
		Schema:     schema,
		Dataset:    ds,
		Duration:   time.Since(t0),
	}
	p.opt.progress("block", b.Duration)
	return b, nil
}

// MetaBlock runs Phase 3 (meta-blocking) on a Blocks artifact: the
// blocking graph is built, weighted and pruned under this pipeline's
// Scheme/Pruning/Engine settings, so re-running MetaBlock with different
// pipelines over one Blocks artifact sweeps Phase 3 parameters without
// recomputing induction or blocking. The returned Result carries the
// phase timings of the artifacts it consumed.
func (p *Pipeline) MetaBlock(ctx context.Context, blocks *Blocks) (*Result, error) {
	if blocks == nil || blocks.Collection == nil {
		return nil, errors.New("blast: MetaBlock requires a non-nil Blocks artifact")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := &Result{Blocks: blocks.Collection}
	if sch := blocks.Schema; sch != nil {
		res.Partitioning = sch.Partitioning
		res.InductionTime = sch.Duration
	}
	res.BlockTime = blocks.Duration

	t0 := time.Now()
	if p.opt.Supervised {
		ds := blocks.Dataset
		if ds == nil || ds.Truth == nil {
			return nil, errors.New("blast: supervised meta-blocking requires a Blocks artifact with a ground truth")
		}
		g, err := graph.BuildCtx(ctx, blocks.Collection)
		if err != nil {
			return nil, err
		}
		sup := supervised.Run(g, ds.Truth, supervised.Config{
			TrainFraction: p.opt.TrainFraction,
			NegativeRatio: 1,
			Seed:          p.opt.Seed,
		})
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.Pairs = sup.Pairs
		res.MetaTime = time.Since(t0)
		p.opt.progress("supervised", res.MetaTime)
	} else {
		mb, err := metablocking.RunCtx(ctx, blocks.Collection, p.metaConfig())
		if err != nil {
			return nil, err
		}
		res.Pairs = mb.Pairs
		res.MetaTime = time.Since(t0)
	}

	if ds := blocks.Dataset; ds != nil && ds.Truth != nil && ds.Truth.Size() > 0 {
		res.Quality = metrics.EvaluatePairs(res.Pairs, ds.Truth)
		res.BlockQuality = metrics.EvaluateBlocks(blocks.Collection, ds.Truth)
	}
	return res, nil
}

// metaConfigFromOptions maps validated options onto the meta-blocking
// configuration. It is shared by the staged MetaBlock phase and by the
// Index (both the cold freeze and the incremental global re-derivation),
// so every path prunes under literally the same configuration.
func metaConfigFromOptions(o Options) metablocking.Config {
	return metablocking.Config{
		Scheme:  o.Scheme,
		Pruning: o.Pruning,
		Engine:  o.Engine,
		C:       o.C,
		D:       o.D,
		K:       o.K,
		Workers: o.Workers,
		Spill:   o.spillOptions(""),
	}
}

// metaConfig maps the pipeline options onto the meta-blocking
// configuration, wiring the Progress observer into the stage hook.
func (p *Pipeline) metaConfig() metablocking.Config {
	cfg := metaConfigFromOptions(p.opt)
	if p.opt.Progress != nil {
		cfg.OnStage = func(stage string, d time.Duration) { p.opt.progress(stage, d) }
	}
	return cfg
}

// Run executes the three phases in sequence. Legacy blast.Run delegates
// here; staged callers get the same result while keeping the
// intermediate artifacts.
func (p *Pipeline) Run(ctx context.Context, ds *model.Dataset) (*Result, error) {
	sch, err := p.InduceSchema(ctx, ds)
	if err != nil {
		return nil, err
	}
	blocks, err := p.Block(ctx, ds, sch)
	if err != nil {
		return nil, err
	}
	return p.MetaBlock(ctx, blocks)
}
